/**
 * @file
 * percentileFromHistogram edge cases: the streaming latency
 * percentiles must behave sanely on empty histograms, degenerate
 * single-bin distributions, and mass that sits entirely past the
 * tracked range (overflow bin).
 */

#include "stream/telemetry.hh"

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace nisqpp {
namespace {

TEST(PercentileFromHistogram, EmptyHistogramReturnsZero)
{
    Histogram hist(15);
    EXPECT_EQ(percentileFromHistogram(hist, 0.0), 0.0);
    EXPECT_EQ(percentileFromHistogram(hist, 0.5), 0.0);
    EXPECT_EQ(percentileFromHistogram(hist, 1.0), 0.0);
}

TEST(PercentileFromHistogram, SingleBinMassAnswersThatBin)
{
    Histogram hist(15);
    for (int i = 0; i < 100; ++i)
        hist.add(7);
    EXPECT_EQ(percentileFromHistogram(hist, 0.01), 7.0);
    EXPECT_EQ(percentileFromHistogram(hist, 0.50), 7.0);
    EXPECT_EQ(percentileFromHistogram(hist, 0.99), 7.0);
    EXPECT_EQ(percentileFromHistogram(hist, 1.00), 7.0);
}

TEST(PercentileFromHistogram, OverflowMassSaturatesToBinCount)
{
    // Every observation past the tracked range: the walk never reaches
    // the target inside the bins, so the percentile saturates to
    // numBins() — a sentinel one past the largest exact value.
    Histogram hist(15);
    hist.add(1000);
    hist.add(2000);
    EXPECT_EQ(percentileFromHistogram(hist, 0.5),
              static_cast<double>(hist.numBins()));
    EXPECT_EQ(percentileFromHistogram(hist, 1.0),
              static_cast<double>(hist.numBins()));
    // q = 0 is satisfied by the very first (empty) bin.
    EXPECT_EQ(percentileFromHistogram(hist, 0.0), 0.0);
}

TEST(PercentileFromHistogram, MixedMassWalksTheCdf)
{
    Histogram hist(15);
    for (int i = 0; i < 90; ++i)
        hist.add(2);
    for (int i = 0; i < 9; ++i)
        hist.add(5);
    hist.add(999); // one overflow observation
    EXPECT_EQ(percentileFromHistogram(hist, 0.50), 2.0);
    EXPECT_EQ(percentileFromHistogram(hist, 0.95), 5.0);
    EXPECT_EQ(percentileFromHistogram(hist, 0.99), 5.0);
    EXPECT_EQ(percentileFromHistogram(hist, 1.00),
              static_cast<double>(hist.numBins()));
}

} // namespace
} // namespace nisqpp
