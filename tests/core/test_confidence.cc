/**
 * @file
 * Confidence extraction from mesh telemetry (core/confidence.hh): hard
 * exits score zero, clean decodes score in (0, 1] monotonically in
 * decode effort — plus the setLimitsForTest guard rail that keeps a
 * misconfigured test from masquerading as instant quiescence.
 */

#include <gtest/gtest.h>

#include "core/confidence.hh"
#include "core/mesh_decoder.hh"
#include "surface/lattice.hh"

namespace nisqpp {
namespace {

MeshDecodeStats
cleanStats(int cycles, int resets)
{
    MeshDecodeStats s;
    s.cycles = cycles;
    s.resets = resets;
    return s;
}

TEST(MeshConfidence, HardExitsScoreZero)
{
    const MeshConfidence conf{67};
    MeshDecodeStats timedOut = cleanStats(5, 0);
    timedOut.timedOut = true;
    EXPECT_EQ(conf.score(timedOut), 0.0);

    MeshDecodeStats quiesced = cleanStats(5, 0);
    quiesced.quiesced = true;
    EXPECT_EQ(conf.score(quiesced), 0.0);

    MeshDecodeStats leftover = cleanStats(5, 0);
    leftover.remainingHot = 2;
    EXPECT_EQ(conf.score(leftover), 0.0);
}

TEST(MeshConfidence, EmptyDecodeScoresOne)
{
    const MeshConfidence conf{67};
    EXPECT_DOUBLE_EQ(conf.score(cleanStats(0, 0)), 1.0);
}

TEST(MeshConfidence, MonotoneDecreasingInEffort)
{
    const MeshConfidence conf{67};
    double prev = 2.0;
    for (int cycles : {0, 5, 20, 80, 400}) {
        const double s = conf.score(cleanStats(cycles, 0));
        EXPECT_GT(s, 0.0);
        EXPECT_LE(s, 1.0);
        EXPECT_LT(s, prev);
        prev = s;
    }
    // Resets cost extra on top of cycles.
    EXPECT_LT(conf.score(cleanStats(20, 3)),
              conf.score(cleanStats(20, 0)));
}

TEST(MeshConfidence, NormalizedByQuiescenceWindow)
{
    // The same relative effort scores the same at both windows.
    const MeshConfidence small{10, 0};
    const MeshConfidence large{100, 0};
    EXPECT_DOUBLE_EQ(small.score(cleanStats(10, 0)),
                     large.score(cleanStats(100, 0)));
}

TEST(MeshDecoderLimits, SetLimitsForTestAcceptsPositive)
{
    SurfaceLattice lattice(3);
    MeshDecoder mesh(lattice, ErrorType::Z);
    mesh.setLimitsForTest(12, 4);
    EXPECT_EQ(mesh.cycleCap(), 12);
    EXPECT_EQ(mesh.quiescenceWindow(), 4);
}

TEST(MeshDecoderLimits, SetLimitsForTestRejectsNonPositive)
{
    SurfaceLattice lattice(3);
    MeshDecoder mesh(lattice, ErrorType::Z);
    EXPECT_DEATH(mesh.setLimitsForTest(0, 4), "positive");
    EXPECT_DEATH(mesh.setLimitsForTest(12, 0), "positive");
    EXPECT_DEATH(mesh.setLimitsForTest(-3, -1), "positive");
}

} // namespace
} // namespace nisqpp
