/**
 * @file Tests of the incremental design variants (paper Fig. 10 top
 * row): each added mechanism must improve decoding quality.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/mesh_decoder.hh"
#include "sim/monte_carlo.hh"
#include "surface/error_model.hh"
#include "surface/logical.hh"

namespace nisqpp {
namespace {

/** Failure count for one variant on a fixed error stream. */
int
variantFailures(const MeshConfig &config, int d, double p, int trials,
                std::uint64_t seed)
{
    SurfaceLattice lat(d);
    MeshDecoder dec(lat, ErrorType::Z, config);
    DephasingModel model(p);
    Rng rng(seed);
    int fails = 0;
    for (int t = 0; t < trials; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Correction corr =
            dec.decode(extractSyndrome(st, ErrorType::Z));
        corr.applyTo(st, ErrorType::Z);
        fails += classifyResidual(st, ErrorType::Z).failed();
    }
    return fails;
}

TEST(MeshVariants, BoundaryMechanismRequiredForOddSyndromes)
{
    // A single syndrome is unresolvable without boundary modules.
    SurfaceLattice lat(5);
    MeshDecoder no_boundary(lat, ErrorType::Z,
                            MeshConfig::withReset());
    Syndrome syn(lat, ErrorType::Z);
    syn.set(lat.ancillaIndex(ErrorType::Z, {2, 3}), true);
    no_boundary.decode(syn);
    EXPECT_EQ(no_boundary.lastStats().remainingHot, 1);

    MeshDecoder with_boundary(lat, ErrorType::Z,
                              MeshConfig::withResetAndBoundary());
    with_boundary.decode(syn);
    EXPECT_EQ(with_boundary.lastStats().remainingHot, 0);
}

TEST(MeshVariants, LadderImprovesAccuracy)
{
    // Robust ladder facts under the paper's lifetime protocol: the
    // final design beats every degraded variant by a wide margin, and
    // adding the reset mechanism never hurts the baseline. (Our
    // unarbitrated boundary variant trades differently than the
    // paper's unspecified intermediate; see EXPERIMENTS.md.)
    const int d = 5;
    const double p = 0.02;
    const int trials = 2000;
    auto lifetime_fails = [&](const MeshConfig &config) {
        SurfaceLattice lat(d);
        MeshDecoder dec(lat, ErrorType::Z, config);
        DephasingModel model(p);
        LifetimeSimulator sim(lat, model, dec, nullptr, 42);
        sim.setLifetimeMode(true);
        MonteCarloResult acc;
        for (int t = 0; t < trials; ++t)
            sim.runRound(acc);
        return static_cast<int>(acc.failures);
    };
    const int f_base = lifetime_fails(MeshConfig::baseline());
    const int f_reset = lifetime_fails(MeshConfig::withReset());
    const int f_bnd =
        lifetime_fails(MeshConfig::withResetAndBoundary());
    const int f_final = lifetime_fails(MeshConfig::finalDesign());

    EXPECT_GE(f_base + trials / 50, f_reset);
    EXPECT_LT(5 * f_final, f_base);
    EXPECT_LT(5 * f_final, f_reset);
    EXPECT_LT(5 * f_final, f_bnd);
}

TEST(MeshVariants, BaselineLeavesStaleSignalFailures)
{
    // Fig. 8(a): without reset, stale trains produce wrong chains; the
    // baseline must show residual-syndrome rounds that the final
    // design does not.
    const int d = 5;
    SurfaceLattice lat(d);
    MeshDecoder base(lat, ErrorType::Z, MeshConfig::baseline());
    MeshDecoder final_dec(lat, ErrorType::Z);
    DephasingModel model(0.06);
    Rng rng(0xdead);
    int base_resid = 0, final_resid = 0;
    for (int t = 0; t < 400; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Syndrome syn = extractSyndrome(st, ErrorType::Z);
        ErrorState st2 = st;
        base.decode(syn).applyTo(st, ErrorType::Z);
        final_dec.decode(syn).applyTo(st2, ErrorType::Z);
        base_resid += extractSyndrome(st, ErrorType::Z).weight() != 0;
        final_resid += extractSyndrome(st2, ErrorType::Z).weight() != 0;
    }
    EXPECT_GT(base_resid, final_resid);
}

TEST(MeshVariants, ResetSerializesRounds)
{
    // With reset, pairing rounds are serialized: the reset count must
    // be positive whenever pairings occurred.
    SurfaceLattice lat(5);
    MeshDecoder dec(lat, ErrorType::Z);
    Syndrome syn(lat, ErrorType::Z);
    syn.set(lat.ancillaIndex(ErrorType::Z, {0, 1}), true);
    syn.set(lat.ancillaIndex(ErrorType::Z, {0, 3}), true);
    dec.decode(syn);
    EXPECT_GE(dec.lastStats().resets, 1);
}

TEST(MeshVariants, FinalDesignBeatsResetBoundaryOnEquidistant)
{
    // The equidistant scenario of Fig. 8(c): without request-grant,
    // B pairs with both neighbors and leaves residual syndromes.
    SurfaceLattice lat(7);
    Syndrome syn(lat, ErrorType::Z);
    syn.set(lat.ancillaIndex(ErrorType::Z, {6, 3}), true);
    syn.set(lat.ancillaIndex(ErrorType::Z, {6, 7}), true);
    syn.set(lat.ancillaIndex(ErrorType::Z, {6, 11}), true);

    MeshDecoder rb(lat, ErrorType::Z,
                   MeshConfig::withResetAndBoundary());
    MeshDecoder fin(lat, ErrorType::Z);

    auto residual = [&](MeshDecoder &dec) {
        ErrorState st(lat);
        const Correction corr = dec.decode(syn);
        for (int f : corr.dataFlips)
            st.flip(ErrorType::Z, f);
        Syndrome after = extractSyndrome(st, ErrorType::Z);
        for (Coord c : {Coord{6, 3}, Coord{6, 7}, Coord{6, 11}})
            after.flip(lat.ancillaIndex(ErrorType::Z, c));
        return after.weight();
    };
    EXPECT_EQ(residual(fin), 0);
    // The degraded variant is permitted to fail here (and does for
    // this arrangement in the paper); we only require that the final
    // design resolves what the ladder motivates.
    (void)rb;
}

} // namespace
} // namespace nisqpp
