/**
 * @file Property tests of the final-design mesh decoder on randomized
 * error patterns across lattice sizes.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/mesh_decoder.hh"
#include "surface/error_model.hh"
#include "surface/logical.hh"

namespace nisqpp {
namespace {

class MeshProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MeshProperty, CorrectsAllWeightOneErrors)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    for (ErrorType type : {ErrorType::Z, ErrorType::X}) {
        MeshDecoder dec(lat, type);
        for (int q = 0; q < lat.numData(); ++q) {
            ErrorState st(lat);
            st.flip(type, q);
            const Correction corr =
                dec.decode(extractSyndrome(st, type));
            corr.applyTo(st, type);
            const FailureReport rep = classifyResidual(st, type);
            ASSERT_FALSE(rep.failed())
                << "d=" << d << " type="
                << (type == ErrorType::Z ? "Z" : "X") << " q=" << q;
        }
    }
}

TEST_P(MeshProperty, RandomErrorsNeverStall)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    MeshDecoder dec(lat, ErrorType::Z);
    DephasingModel model(0.06);
    Rng rng(0x77aa + d);
    for (int t = 0; t < 300; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        dec.decode(extractSyndrome(st, ErrorType::Z));
        ASSERT_FALSE(dec.lastStats().timedOut);
        ASSERT_EQ(dec.lastStats().remainingHot, 0) << "trial " << t;
    }
}

TEST_P(MeshProperty, SyndromeAlmostAlwaysCleared)
{
    // The final design should return to the code space in essentially
    // every round; allow a small tolerance for rare congested races
    // (which the Monte Carlo counts as failures).
    const int d = GetParam();
    SurfaceLattice lat(d);
    MeshDecoder dec(lat, ErrorType::Z);
    DephasingModel model(0.05);
    Rng rng(0x88bb + d);
    const int trials = 500;
    int residual = 0;
    for (int t = 0; t < trials; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Correction corr =
            dec.decode(extractSyndrome(st, ErrorType::Z));
        corr.applyTo(st, ErrorType::Z);
        residual += extractSyndrome(st, ErrorType::Z).weight() != 0;
    }
    EXPECT_LE(residual, trials / 50) << "residual rounds: " << residual;
}

TEST_P(MeshProperty, CyclesBoundedLinearInDistance)
{
    // Table IV: maximum cycles to solution scale linearly with d.
    const int d = GetParam();
    SurfaceLattice lat(d);
    MeshDecoder dec(lat, ErrorType::Z);
    DephasingModel model(0.08);
    Rng rng(0x99cc + d);
    int max_cycles = 0;
    for (int t = 0; t < 300; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        dec.decode(extractSyndrome(st, ErrorType::Z));
        max_cycles = std::max(max_cycles, dec.lastStats().cycles);
    }
    EXPECT_LE(max_cycles, 20 * (2 * d - 1) + 40);
    EXPECT_GT(max_cycles, 0);
}

TEST_P(MeshProperty, PairingsMatchSyndromeWeight)
{
    // Every decode clears each hot module exactly once: pairings equal
    // the syndrome weight when nothing stalls.
    const int d = GetParam();
    SurfaceLattice lat(d);
    MeshDecoder dec(lat, ErrorType::Z);
    DephasingModel model(0.04);
    Rng rng(0xaadd + d);
    for (int t = 0; t < 200; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Syndrome syn = extractSyndrome(st, ErrorType::Z);
        dec.decode(syn);
        ASSERT_EQ(dec.lastStats().pairings +
                      dec.lastStats().remainingHot,
                  syn.weight());
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, MeshProperty,
                         ::testing::Values(3, 5, 7, 9, 11));

TEST(MeshProperty, DepolarizingBothFamilies)
{
    // Under depolarizing noise both mesh instances (Z and X families)
    // operate symmetrically.
    SurfaceLattice lat(5);
    MeshDecoder dec_z(lat, ErrorType::Z);
    MeshDecoder dec_x(lat, ErrorType::X);
    DepolarizingModel model(0.05);
    Rng rng(0xbbee);
    int fails = 0;
    for (int t = 0; t < 300; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        dec_z.decode(extractSyndrome(st, ErrorType::Z))
            .applyTo(st, ErrorType::Z);
        dec_x.decode(extractSyndrome(st, ErrorType::X))
            .applyTo(st, ErrorType::X);
        fails += classifyResidual(st, ErrorType::Z).failed() ||
                 classifyResidual(st, ErrorType::X).failed();
    }
    EXPECT_LT(fails, 100);
}

} // namespace
} // namespace nisqpp
