/**
 * @file
 * Lane-packed batch decoding pinned to the scalar mesh path: for every
 * distance/variant the experiments run, decodeBatch() must produce
 * corrections AND per-lane telemetry bit-identical to one-at-a-time
 * scalar decodes of the same syndromes — including lanes that hit
 * quiescence or the cycle cap while sibling lanes keep stepping, and
 * empty lanes that finish at cycle 0 next to heavy ones.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "core/mesh_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "decoders/workspace.hh"

namespace nisqpp {
namespace {

/** All four incremental designs of the paper's Fig. 10 top row. */
std::vector<MeshConfig>
allVariants()
{
    return {MeshConfig::baseline(), MeshConfig::withReset(),
            MeshConfig::withResetAndBoundary(),
            MeshConfig::finalDesign()};
}

/** Random syndrome: each ancilla hot with probability @p p. */
Syndrome
randomSyndrome(const SurfaceLattice &lat, ErrorType type, double p,
               Rng &rng)
{
    Syndrome syn(lat, type);
    for (int a = 0; a < lat.numAncilla(type); ++a)
        if (rng.bernoulli(p))
            syn.set(a, true);
    return syn;
}

/**
 * Decode @p syns scalar one-by-one through @p reference and batched
 * through @p batched, asserting bit-identical corrections and stats.
 */
void
expectBatchMatchesScalar(MeshDecoder &reference, MeshDecoder &batched,
                         const std::vector<Syndrome> &syns,
                         const char *label)
{
    std::vector<Correction> expected;
    std::vector<MeshDecodeStats> expectedStats;
    for (const Syndrome &syn : syns) {
        expected.push_back(reference.decode(syn));
        expectedStats.push_back(reference.lastStats());
    }

    std::vector<const Syndrome *> ptrs;
    for (const Syndrome &syn : syns)
        ptrs.push_back(&syn);
    TrialWorkspace ws;
    batched.decodeBatch(ptrs.data(), ptrs.size(), ws);

    ASSERT_GE(ws.laneCorrections.size(), syns.size()) << label;
    for (std::size_t i = 0; i < syns.size(); ++i) {
        EXPECT_EQ(ws.laneCorrections[i].dataFlips,
                  expected[i].dataFlips)
            << label << ": correction of lane " << i;
        const MeshDecodeStats *stats = batched.meshStats(i);
        ASSERT_NE(stats, nullptr) << label << ": lane " << i;
        EXPECT_EQ(*stats, expectedStats[i])
            << label << ": stats of lane " << i << " (cycles "
            << stats->cycles << " vs " << expectedStats[i].cycles
            << ")";
    }
    EXPECT_EQ(batched.meshStats(syns.size()), nullptr) << label;
}

/** 64-bit elements of the lane word behind a dispatch width. */
int
elementsOfWidth(simd::Width w)
{
    switch (w) {
      case simd::Width::Scalar:
        return 1;
      case simd::Width::V256:
        return 4;
      case simd::Width::V512:
        return 8;
    }
    return 1;
}

TEST(MeshBatch, LaneCountTracksSpanAndWidth)
{
    // Lane width is the row span 2d + 1 (the grid plus the boundary
    // ring), so each 64-bit element of the dispatched lane word
    // carries 64 / span sub-lanes and the engine steps elements x that
    // many trials at once, capped at kMaxLanes. Pinned at every
    // dispatch width, not just the CPUID default.
    const simd::Width before = simd::activeWidth();
    for (simd::Width w : {simd::Width::Scalar, simd::Width::V256,
                          simd::Width::V512}) {
        simd::setActiveWidth(w);
        for (int d : {3, 5, 7, 9}) {
            SurfaceLattice lat(d);
            const int span = lat.gridSize() + 2;
            const int expected =
                std::min(MeshDecoder::kMaxLanes,
                         elementsOfWidth(w) * (64 / span));
            MeshDecoder mesh(lat, ErrorType::Z);
            EXPECT_EQ(mesh.batchWidth(), w) << "d=" << d;
            EXPECT_EQ(mesh.batchLanes(), expected) << "d=" << d;
            EXPECT_GE(expected, 1) << "d=" << d;
        }
    }
    simd::setActiveWidth(before);
}

TEST(MeshBatch, MatchesScalarAcrossDistancesAndVariants)
{
    Rng rng(0xba7c4ULL);
    for (int d : {3, 5, 7, 9}) {
        SurfaceLattice lat(d);
        for (const MeshConfig &config : allVariants()) {
            for (ErrorType type : {ErrorType::Z, ErrorType::X}) {
                MeshDecoder reference(lat, type, config);
                MeshDecoder batched(lat, type, config);
                // Mixed severity: empty lanes, typical p = 5% lanes
                // and heavy p = 25% lanes inside the same batch.
                std::vector<Syndrome> syns;
                for (double p : {0.0, 0.05, 0.05, 0.25, 0.05, 0.25,
                                 0.0, 0.15, 0.05, 0.25, 0.05})
                    syns.push_back(
                        randomSyndrome(lat, type, p, rng));
                const std::string label =
                    "d=" + std::to_string(d) + " " + config.label() +
                    (type == ErrorType::Z ? " Z" : " X");
                expectBatchMatchesScalar(reference, batched, syns,
                                         label.c_str());
            }
        }
    }
}

TEST(MeshBatch, QuiescedAndCappedLanesFreezeIndependently)
{
    Rng rng(0x0ddba11ULL);
    for (int d : {5, 9}) {
        SurfaceLattice lat(d);
        for (const MeshConfig &config : allVariants()) {
            MeshDecoder reference(lat, ErrorType::Z, config);
            MeshDecoder batched(lat, ErrorType::Z, config);
            // A tight cap and quiescence window force cap/quiescence
            // exits on heavy lanes while empty lanes still complete
            // normally at cycle 0.
            reference.setLimitsForTest(3 * d, 4);
            batched.setLimitsForTest(3 * d, 4);
            std::vector<Syndrome> syns;
            for (double p : {0.35, 0.0, 0.2, 0.35, 0.0, 0.5, 0.1,
                             0.35, 0.2})
                syns.push_back(randomSyndrome(lat, ErrorType::Z, p,
                                              rng));
            const std::string label = "capped d=" + std::to_string(d) +
                                      " " + config.label();
            expectBatchMatchesScalar(reference, batched, syns,
                                     label.c_str());

            // The point of the tight limits: the batch must actually
            // contain lanes that exited three different ways.
            bool sawNormal = false, sawLimit = false;
            for (std::size_t i = 0; i < syns.size(); ++i) {
                const MeshDecodeStats &s = *batched.meshStats(i);
                sawNormal |= !s.quiesced && !s.timedOut;
                sawLimit |= s.quiesced || s.timedOut;
            }
            EXPECT_TRUE(sawNormal) << label;
            EXPECT_TRUE(sawLimit) << label;
        }
    }
}

TEST(MeshBatch, DivergingCompletionCyclesWithinOneWord)
{
    // One word carries lanes finishing at different cycles: an empty
    // lane (0 cycles), a single-pair lane and a multi-pair lane.
    SurfaceLattice lat(5);
    MeshDecoder reference(lat, ErrorType::Z);
    MeshDecoder batched(lat, ErrorType::Z);

    std::vector<Syndrome> syns(8, Syndrome(lat, ErrorType::Z));
    syns[1].set(0, true);
    syns[1].set(1, true);
    for (int a = 0; a < lat.numAncilla(ErrorType::Z); a += 2)
        syns[3].set(a, true);
    syns[5].set(4, true);
    syns[5].set(7, true);
    expectBatchMatchesScalar(reference, batched, syns,
                             "diverging-cycles");

    std::vector<int> cycles;
    for (int i = 0; i < 8; ++i)
        cycles.push_back(batched.meshStats(i)->cycles);
    EXPECT_EQ(cycles[0], 0);
    EXPECT_GT(cycles[3], 0);
    EXPECT_NE(cycles[1], cycles[3]);
}

TEST(MeshBatch, SoftwareFallbackLoopMatchesScalar)
{
    // The Decoder base class serves batches through a scalar loop:
    // same corrections as one-at-a-time decodes.
    SurfaceLattice lat(7);
    UnionFindDecoder dec(lat, ErrorType::Z);
    Rng rng(0x5caff01dULL);

    std::vector<Syndrome> syns;
    for (double p : {0.0, 0.05, 0.2, 0.1, 0.05})
        syns.push_back(randomSyndrome(lat, ErrorType::Z, p, rng));

    std::vector<Correction> expected;
    for (const Syndrome &syn : syns)
        expected.push_back(dec.decode(syn));

    std::vector<const Syndrome *> ptrs;
    for (const Syndrome &syn : syns)
        ptrs.push_back(&syn);
    TrialWorkspace ws;
    dec.decodeBatch(ptrs.data(), ptrs.size(), ws);
    for (std::size_t i = 0; i < syns.size(); ++i)
        EXPECT_EQ(ws.laneCorrections[i].dataFlips,
                  expected[i].dataFlips);
    EXPECT_EQ(dec.meshStats(), nullptr);
}

TEST(MeshBatch, RepeatedBatchesReuseStateCleanly)
{
    // Back-to-back batches of different sizes through one decoder and
    // one workspace: later batches must not see earlier lanes' state.
    SurfaceLattice lat(9);
    MeshDecoder reference(lat, ErrorType::Z);
    MeshDecoder batched(lat, ErrorType::Z);
    Rng rng(0x2ea7edULL);
    TrialWorkspace ws;

    for (std::size_t size : {7u, 3u, 8u, 1u, 5u}) {
        std::vector<Syndrome> syns;
        for (std::size_t i = 0; i < size; ++i)
            syns.push_back(
                randomSyndrome(lat, ErrorType::Z, 0.12, rng));
        std::vector<const Syndrome *> ptrs;
        for (const Syndrome &syn : syns)
            ptrs.push_back(&syn);
        batched.decodeBatch(ptrs.data(), ptrs.size(), ws);
        for (std::size_t i = 0; i < size; ++i) {
            const Correction expected = reference.decode(syns[i]);
            EXPECT_EQ(ws.laneCorrections[i].dataFlips,
                      expected.dataFlips)
                << "batch size " << size << " lane " << i;
            EXPECT_EQ(*batched.meshStats(i), reference.lastStats());
        }
    }
}

} // namespace
} // namespace nisqpp
