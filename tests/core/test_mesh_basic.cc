/** @file Basic mesh decoder behavior: empty syndromes, configs, stats. */

#include <gtest/gtest.h>

#include "core/mesh_decoder.hh"

namespace nisqpp {
namespace {

TEST(MeshBasic, EmptySyndromeZeroCycles)
{
    SurfaceLattice lat(5);
    MeshDecoder dec(lat, ErrorType::Z);
    Syndrome syn(lat, ErrorType::Z);
    const Correction corr = dec.decode(syn);
    EXPECT_TRUE(corr.dataFlips.empty());
    EXPECT_EQ(dec.lastStats().cycles, 0);
    EXPECT_EQ(dec.lastStats().pairings, 0);
}

TEST(MeshBasic, ConfigLabels)
{
    EXPECT_EQ(MeshConfig::baseline().label(), "baseline");
    EXPECT_EQ(MeshConfig::withReset().label(), "reset");
    EXPECT_EQ(MeshConfig::withResetAndBoundary().label(),
              "reset+boundary");
    EXPECT_EQ(MeshConfig::finalDesign().label(), "final");
}

TEST(MeshBasic, NameIncludesVariant)
{
    SurfaceLattice lat(3);
    MeshDecoder dec(lat, ErrorType::Z, MeshConfig::baseline());
    EXPECT_EQ(dec.name(), "sfq-mesh[baseline]");
}

TEST(MeshBasic, StatsNanosecondsConversion)
{
    MeshDecodeStats stats;
    stats.cycles = 100;
    EXPECT_NEAR(stats.nanoseconds(162.72), 16.272, 1e-9);
}

TEST(MeshBasic, DecodeIsDeterministic)
{
    SurfaceLattice lat(5);
    MeshDecoder dec(lat, ErrorType::Z);
    Syndrome syn(lat, ErrorType::Z);
    syn.set(1, true);
    syn.set(4, true);
    syn.set(9, true);
    const Correction c1 = dec.decode(syn);
    const int cycles1 = dec.lastStats().cycles;
    const Correction c2 = dec.decode(syn);
    EXPECT_EQ(c1.dataFlips, c2.dataFlips);
    EXPECT_EQ(dec.lastStats().cycles, cycles1);
}

TEST(MeshBasic, CycleCapScalesWithLattice)
{
    SurfaceLattice small(3), large(9);
    MeshDecoder a(small, ErrorType::Z), b(large, ErrorType::Z);
    EXPECT_LT(a.cycleCap(), b.cycleCap());
    EXPECT_GT(a.quiescenceWindow(), 0);
}

TEST(MeshBasic, SingleSyndromeWithoutBoundaryQuiesces)
{
    // One hot module and no boundary mechanism: nothing to pair with;
    // the decoder exits via the quiescence window with the syndrome
    // unresolved.
    SurfaceLattice lat(5);
    MeshDecoder dec(lat, ErrorType::Z, MeshConfig::withReset());
    Syndrome syn(lat, ErrorType::Z);
    syn.set(lat.ancillaIndex(ErrorType::Z, {4, 3}), true);
    dec.decode(syn);
    EXPECT_TRUE(dec.lastStats().quiesced);
    EXPECT_EQ(dec.lastStats().remainingHot, 1);
}

TEST(MeshBasic, SingleSyndromeWithBoundaryResolves)
{
    SurfaceLattice lat(5);
    MeshDecoder dec(lat, ErrorType::Z);
    Syndrome syn(lat, ErrorType::Z);
    syn.set(lat.ancillaIndex(ErrorType::Z, {4, 3}), true);
    const Correction corr = dec.decode(syn);
    EXPECT_EQ(dec.lastStats().remainingHot, 0);
    EXPECT_FALSE(dec.lastStats().quiesced);
    // Chain to the nearest (west) boundary: data (4,0) and (4,2).
    EXPECT_EQ(corr.dataFlips.size(), 2u);
}

TEST(MeshBasic, RejectsWrongSyndromeType)
{
    SurfaceLattice lat(3);
    MeshDecoder dec(lat, ErrorType::Z);
    Syndrome syn(lat, ErrorType::X);
    EXPECT_DEATH(dec.decode(syn), "type");
}

TEST(MeshBasic, HugeLatticeRejected)
{
    SurfaceLattice lat(31); // grid 61, span 63 > 62
    EXPECT_DEATH(MeshDecoder(lat, ErrorType::Z), "64-bit");
}

} // namespace
} // namespace nisqpp
