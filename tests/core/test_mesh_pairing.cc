/**
 * @file Protocol-level pairing tests of the mesh decoder: collinear and
 * corner pairings, boundary handshakes, request-grant arbitration and
 * handshake timing (paper Fig. 7 and Section V-C).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/mesh_decoder.hh"

namespace nisqpp {
namespace {

Syndrome
makeSyndrome(const SurfaceLattice &lat, ErrorType type,
             std::initializer_list<Coord> hot)
{
    Syndrome syn(lat, type);
    for (Coord c : hot)
        syn.set(lat.ancillaIndex(type, c), true);
    return syn;
}

bool
containsData(const SurfaceLattice &lat, const Correction &corr, Coord c)
{
    const int idx = lat.dataIndex(c);
    return std::count(corr.dataFlips.begin(), corr.dataFlips.end(),
                      idx) %
               2 ==
           1;
}

TEST(MeshPairing, AdjacentHorizontalPair)
{
    SurfaceLattice lat(5);
    MeshDecoder dec(lat, ErrorType::Z);
    const Correction corr = dec.decode(
        makeSyndrome(lat, ErrorType::Z, {{2, 3}, {2, 5}}));
    ASSERT_EQ(corr.dataFlips.size(), 1u);
    EXPECT_TRUE(containsData(lat, corr, {2, 4}));
    EXPECT_EQ(dec.lastStats().pairings, 2);
    EXPECT_EQ(dec.lastStats().resets, 1);
}

TEST(MeshPairing, AdjacentVerticalPair)
{
    SurfaceLattice lat(5);
    MeshDecoder dec(lat, ErrorType::Z);
    const Correction corr = dec.decode(
        makeSyndrome(lat, ErrorType::Z, {{2, 3}, {4, 3}}));
    ASSERT_EQ(corr.dataFlips.size(), 1u);
    EXPECT_TRUE(containsData(lat, corr, {3, 3}));
}

TEST(MeshPairing, CornerPairTracesLPath)
{
    SurfaceLattice lat(5);
    MeshDecoder dec(lat, ErrorType::Z);
    const Correction corr = dec.decode(
        makeSyndrome(lat, ErrorType::Z, {{2, 3}, {4, 5}}));
    // Two data corrections forming an L between the ancillas.
    ASSERT_EQ(corr.dataFlips.size(), 2u);
    EXPECT_EQ(dec.lastStats().pairings, 2);
}

TEST(MeshPairing, CollinearHandshakeTiming)
{
    // Mesh distance M between the pair: grow meets at M/2, requests
    // arrive at M, grants meet at 3M/2, pair pulses land at 2M; plus
    // post-fire drain. Completion must sit near 2M.
    SurfaceLattice lat(7);
    MeshDecoder dec(lat, ErrorType::Z);
    dec.decode(makeSyndrome(lat, ErrorType::Z, {{6, 5}, {6, 9}}));
    const int m = 4; // both far from the boundaries (6 hops away)
    EXPECT_GE(dec.lastStats().cycles, 2 * m);
    EXPECT_LE(dec.lastStats().cycles, 2 * m + 4);
}

TEST(MeshPairing, BoundaryHandshakeWest)
{
    SurfaceLattice lat(5);
    MeshDecoder dec(lat, ErrorType::Z);
    const Correction corr =
        dec.decode(makeSyndrome(lat, ErrorType::Z, {{2, 1}}));
    ASSERT_EQ(corr.dataFlips.size(), 1u);
    EXPECT_TRUE(containsData(lat, corr, {2, 0}));
    // Round trip: grow 2, request 2, grant 2, pair 2 (plus drain).
    EXPECT_GE(dec.lastStats().cycles, 8);
    EXPECT_LE(dec.lastStats().cycles, 12);
}

TEST(MeshPairing, BoundaryHandshakeEastWhenCloser)
{
    SurfaceLattice lat(5);
    MeshDecoder dec(lat, ErrorType::Z);
    const Correction corr =
        dec.decode(makeSyndrome(lat, ErrorType::Z, {{2, 7}}));
    ASSERT_EQ(corr.dataFlips.size(), 1u);
    EXPECT_TRUE(containsData(lat, corr, {2, 8}));
}

TEST(MeshPairing, XFamilyUsesNorthSouthBoundaries)
{
    SurfaceLattice lat(5);
    MeshDecoder dec(lat, ErrorType::X);
    const Correction corr =
        dec.decode(makeSyndrome(lat, ErrorType::X, {{1, 2}}));
    ASSERT_EQ(corr.dataFlips.size(), 1u);
    EXPECT_TRUE(containsData(lat, corr, {0, 2}));
}

TEST(MeshPairing, NearPairBeatsFarBoundary)
{
    // Two central syndromes one apart must pair together, not with the
    // distant boundaries.
    SurfaceLattice lat(9);
    MeshDecoder dec(lat, ErrorType::Z);
    const Correction corr = dec.decode(
        makeSyndrome(lat, ErrorType::Z, {{8, 7}, {8, 9}}));
    ASSERT_EQ(corr.dataFlips.size(), 1u);
    EXPECT_TRUE(containsData(lat, corr, {8, 8}));
}

TEST(MeshPairing, CloseBoundaryBeatsFarPartner)
{
    // Syndromes hugging opposite boundaries pair to their boundaries:
    // handshake 4*2 = 8 cycles beats partner handshake 2*12 = 24.
    SurfaceLattice lat(7);
    MeshDecoder dec(lat, ErrorType::Z);
    const Correction corr = dec.decode(
        makeSyndrome(lat, ErrorType::Z, {{6, 1}, {6, 11}}));
    ASSERT_EQ(corr.dataFlips.size(), 2u);
    EXPECT_TRUE(containsData(lat, corr, {6, 0}));
    EXPECT_TRUE(containsData(lat, corr, {6, 12}));
}

TEST(MeshPairing, ThreeSyndromesGreedyOrder)
{
    // A, B close together; C far: A-B pair first, C goes to boundary.
    SurfaceLattice lat(7);
    MeshDecoder dec(lat, ErrorType::Z);
    const Correction corr = dec.decode(makeSyndrome(
        lat, ErrorType::Z, {{6, 5}, {6, 7}, {0, 11}}));
    EXPECT_EQ(dec.lastStats().remainingHot, 0);
    EXPECT_TRUE(containsData(lat, corr, {6, 6}));
    EXPECT_TRUE(containsData(lat, corr, {0, 12}));
}

TEST(MeshPairing, EquidistantTripleResolvesAll)
{
    // B equidistant from A and C (Fig. 8(c)): the request-grant
    // arbitration pairs B with exactly one of them; the final design
    // leaves no syndrome unresolved.
    SurfaceLattice lat(7);
    MeshDecoder dec(lat, ErrorType::Z);
    const Correction corr = dec.decode(makeSyndrome(
        lat, ErrorType::Z, {{6, 3}, {6, 7}, {6, 11}}));
    EXPECT_EQ(dec.lastStats().remainingHot, 0);
    // Residual must be syndrome-free.
    ErrorState st(lat);
    for (int f : corr.dataFlips)
        st.flip(ErrorType::Z, f);
    Syndrome after = extractSyndrome(st, ErrorType::Z);
    after.flip(lat.ancillaIndex(ErrorType::Z, {6, 3}));
    after.flip(lat.ancillaIndex(ErrorType::Z, {6, 7}));
    after.flip(lat.ancillaIndex(ErrorType::Z, {6, 11}));
    EXPECT_EQ(after.weight(), 0);
}

TEST(MeshPairing, ChainsFromSuccessiveRoundsCompose)
{
    // The regression of the destructive-read accumulation: a later
    // boundary chain crossing an earlier pairing chain must XOR, not
    // OR (three collinear syndromes at mixed spacing).
    SurfaceLattice lat(7);
    MeshDecoder dec(lat, ErrorType::Z);
    const Correction corr = dec.decode(makeSyndrome(
        lat, ErrorType::Z, {{2, 7}, {2, 9}, {2, 11}}));
    ErrorState st(lat);
    for (int f : corr.dataFlips)
        st.flip(ErrorType::Z, f);
    Syndrome after = extractSyndrome(st, ErrorType::Z);
    for (Coord c : {Coord{2, 7}, Coord{2, 9}, Coord{2, 11}})
        after.flip(lat.ancillaIndex(ErrorType::Z, c));
    EXPECT_EQ(after.weight(), 0);
}

} // namespace
} // namespace nisqpp
