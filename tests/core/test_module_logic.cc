/** @file Tests for the shared module-logic primitives. */

#include <gtest/gtest.h>

#include "core/module_logic.hh"

namespace nisqpp {
namespace {

using Word = std::uint64_t;

constexpr int dN = static_cast<int>(Dir::N);
constexpr int dE = static_cast<int>(Dir::E);
constexpr int dS = static_cast<int>(Dir::S);
constexpr int dW = static_cast<int>(Dir::W);

TEST(Dir, ReverseIsInvolution)
{
    for (Dir d : {Dir::N, Dir::E, Dir::S, Dir::W})
        EXPECT_EQ(reverseDir(reverseDir(d)), d);
    EXPECT_EQ(reverseDir(Dir::N), Dir::S);
    EXPECT_EQ(reverseDir(Dir::E), Dir::W);
}

TEST(EmitFromMeets, HeadOnEastWest)
{
    DirRow<Word> in{0, 1, 0, 1}; // E and W present
    DirRow<Word> out{0, 0, 0, 0};
    emitFromMeets(in, Word{1}, out);
    EXPECT_EQ(out[dW], 1u); // back toward the east-traveling origin
    EXPECT_EQ(out[dE], 1u);
    EXPECT_EQ(out[dN], 0u);
    EXPECT_EQ(out[dS], 0u);
}

TEST(EmitFromMeets, HeadOnNorthSouth)
{
    DirRow<Word> in{1, 0, 1, 0};
    DirRow<Word> out{0, 0, 0, 0};
    emitFromMeets(in, Word{1}, out);
    EXPECT_EQ(out[dN], 1u);
    EXPECT_EQ(out[dS], 1u);
    EXPECT_EQ(out[dE], 0u);
    EXPECT_EQ(out[dW], 0u);
}

TEST(EmitFromMeets, EffectiveCornerSE)
{
    // Travel pair {S, E} — the paper's "from up and left" effective
    // corner — emits N and W.
    DirRow<Word> in{0, 1, 1, 0};
    DirRow<Word> out{0, 0, 0, 0};
    emitFromMeets(in, Word{1}, out);
    EXPECT_EQ(out[dN], 1u);
    EXPECT_EQ(out[dW], 1u);
    EXPECT_EQ(out[dE], 0u);
    EXPECT_EQ(out[dS], 0u);
}

TEST(EmitFromMeets, EffectiveCornerSW)
{
    DirRow<Word> in{0, 0, 1, 1}; // {S, W} -> emits N and E
    DirRow<Word> out{0, 0, 0, 0};
    emitFromMeets(in, Word{1}, out);
    EXPECT_EQ(out[dN], 1u);
    EXPECT_EQ(out[dE], 1u);
}

TEST(EmitFromMeets, IneffectiveCorners)
{
    // {N, W} and {N, E} are the hardwired ineffective pairs.
    for (DirRow<Word> in : {DirRow<Word>{1, 0, 0, 1},
                            DirRow<Word>{1, 1, 0, 0}}) {
        DirRow<Word> out{0, 0, 0, 0};
        emitFromMeets(in, Word{1}, out);
        EXPECT_EQ(out[dN] | out[dE] | out[dS] | out[dW], 0u);
    }
}

TEST(EmitFromMeets, PriorityEWOverOthers)
{
    // All four directions present: only the {E,W} pair may fire.
    DirRow<Word> in{1, 1, 1, 1};
    DirRow<Word> out{0, 0, 0, 0};
    emitFromMeets(in, Word{1}, out);
    EXPECT_EQ(out[dE], 1u);
    EXPECT_EQ(out[dW], 1u);
    EXPECT_EQ(out[dN], 0u);
    EXPECT_EQ(out[dS], 0u);
}

TEST(EmitFromMeets, AllowMaskGates)
{
    DirRow<Word> in{0, 1, 0, 1};
    DirRow<Word> out{0, 0, 0, 0};
    emitFromMeets(in, Word{0}, out);
    EXPECT_EQ(out[dE] | out[dW], 0u);
}

TEST(EmitFromMeets, WordParallel)
{
    // Bit 0: head-on E/W; bit 1: corner {S,E}; bit 2: nothing.
    DirRow<Word> in{};
    in[dE] = 0b011;
    in[dW] = 0b001;
    in[dS] = 0b010;
    in[dN] = 0b000;
    DirRow<Word> out{0, 0, 0, 0};
    emitFromMeets(in, Word{0b111}, out);
    EXPECT_EQ(out[dW], 0b011u); // bit0 from EW, bit1 from SE
    EXPECT_EQ(out[dE], 0b001u);
    EXPECT_EQ(out[dN], 0b010u);
    EXPECT_EQ(out[dS], 0b000u);
}

TEST(GrantLatch, SingleRequestLatchesReversed)
{
    DirRow<Word> rq{0, 0, 0, 1}; // request traveling W (from the east)
    DirRow<Word> latch{0, 0, 0, 0};
    updateGrantLatch(rq, Word{1}, latch);
    EXPECT_EQ(latch[dE], 1u); // grant travels back east
    EXPECT_EQ(latch[dN] | latch[dS] | latch[dW], 0u);
}

TEST(GrantLatch, OnlyOneGrantUnderContention)
{
    DirRow<Word> rq{1, 1, 1, 1};
    DirRow<Word> latch{0, 0, 0, 0};
    updateGrantLatch(rq, Word{1}, latch);
    EXPECT_EQ(latch[dN] + latch[dE] + latch[dS] + latch[dW], 1u);
    // Priority: request traveling W wins -> grant East.
    EXPECT_EQ(latch[dE], 1u);
}

TEST(GrantLatch, ExistingLatchBlocksNew)
{
    DirRow<Word> rq{1, 0, 0, 0};
    DirRow<Word> latch{0, 0, 1, 0}; // already granted S
    updateGrantLatch(rq, Word{1}, latch);
    EXPECT_EQ(latch[dS], 1u);
    EXPECT_EQ(latch[dN] | latch[dE] | latch[dW], 0u);
}

TEST(GrantLatch, NonHotNeverLatches)
{
    DirRow<Word> rq{1, 1, 1, 1};
    DirRow<Word> latch{0, 0, 0, 0};
    updateGrantLatch(rq, Word{0}, latch);
    EXPECT_EQ(latch[dN] | latch[dE] | latch[dS] | latch[dW], 0u);
}

} // namespace
} // namespace nisqpp
