/**
 * @file Checkpoint format contract: bit-exact round trips, a distinct
 * actionable error per corruption class (truncation, flipped bytes,
 * wrong version), read-only loads, and — via death tests — the atomic
 * temp+fsync+rename write discipline under injected kills and torn
 * writes.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "ckpt/checkpoint.hh"

namespace nisqpp {
namespace {

using obs::MetricSet;

std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** A ledger exercising every field: awkward doubles, sparse histogram
 * bins, counters/gauges/metric histograms, a complete and an
 * incomplete invocation. */
ckpt::CheckpointLedger
makeLedger()
{
    ckpt::CheckpointLedger ledger;
    ledger.scope = "unit_scope";

    ckpt::InvocationLedger inv0;
    inv0.configText = "shardTrials=64 cells=2 | d=3 p=... | d=5 p=...";
    inv0.complete = true;

    ckpt::CellLedger cellA;
    cellA.frontier = 7;
    cellA.stopped = true;
    cellA.partial.trials = 448;
    cellA.partial.failures = 31;
    cellA.partial.syndromeResidualFailures = 4;
    cellA.partial.cycles = RunningStats::fromRaw(
        {448, 1.0 / 3.0, 2.7182818284590452, -0.0, 1.0e-308});
    cellA.partial.cycleHistogram =
        Histogram::fromParts({0, 12, 0, 0, 99, 1}, 3);
    cellA.partial.metrics.add("engine.trials", 448);
    cellA.partial.metrics.add("decoder.mesh.rounds", 12345678901ULL);
    cellA.partial.metrics.maxGauge("decoder.mesh.peak", 17);
    cellA.partial.metrics.record("decoder.mesh.growth", 3, 8);
    cellA.partial.metrics.record("decoder.mesh.growth", 9, 8);
    cellA.partial.finalize();

    ckpt::CellLedger cellB;
    cellB.frontier = 2;
    cellB.stopped = false;
    cellB.partial.trials = 128;
    cellB.partial.failures = 0;
    cellB.partial.cycles =
        RunningStats::fromRaw({128, 0.1, 123.456, 0.25, 1.0e17});
    cellB.partial.cycleHistogram = Histogram::fromParts({128, 0}, 0);
    cellB.partial.finalize();

    inv0.cells = {cellA, cellB};

    ckpt::InvocationLedger inv1;
    inv1.configText = "shardTrials=64 cells=1 | d=7 p=...";
    inv1.complete = false;
    ckpt::CellLedger cellC;
    cellC.frontier = 0;
    cellC.partial.finalize();
    inv1.cells = {cellC};

    ledger.invocations = {inv0, inv1};
    return ledger;
}

void
expectSameCell(const ckpt::CellLedger &a, const ckpt::CellLedger &b)
{
    EXPECT_EQ(a.frontier, b.frontier);
    EXPECT_EQ(a.stopped, b.stopped);
    const MonteCarloResult &ra = a.partial;
    const MonteCarloResult &rb = b.partial;
    EXPECT_EQ(ra.trials, rb.trials);
    EXPECT_EQ(ra.failures, rb.failures);
    EXPECT_EQ(ra.syndromeResidualFailures, rb.syndromeResidualFailures);
    // Derived fields are recomputed by finalize(), never serialized;
    // for finalized inputs they must still agree bit for bit.
    EXPECT_EQ(bits(ra.logicalErrorRate), bits(rb.logicalErrorRate));
    const RunningStatsRaw sa = ra.cycles.raw();
    const RunningStatsRaw sb = rb.cycles.raw();
    EXPECT_EQ(sa.n, sb.n);
    EXPECT_EQ(bits(sa.mean), bits(sb.mean));
    EXPECT_EQ(bits(sa.m2), bits(sb.m2));
    EXPECT_EQ(bits(sa.min), bits(sb.min));
    EXPECT_EQ(bits(sa.max), bits(sb.max));
    ASSERT_EQ(ra.cycleHistogram.numBins(), rb.cycleHistogram.numBins());
    EXPECT_EQ(ra.cycleHistogram.total(), rb.cycleHistogram.total());
    EXPECT_EQ(ra.cycleHistogram.overflow(),
              rb.cycleHistogram.overflow());
    for (std::size_t i = 0; i < ra.cycleHistogram.numBins(); ++i)
        EXPECT_EQ(ra.cycleHistogram.bin(i), rb.cycleHistogram.bin(i));
}

void
expectSameLedger(const ckpt::CheckpointLedger &a,
                 const ckpt::CheckpointLedger &b)
{
    EXPECT_EQ(a.scope, b.scope);
    ASSERT_EQ(a.invocations.size(), b.invocations.size());
    for (std::size_t i = 0; i < a.invocations.size(); ++i) {
        EXPECT_EQ(a.invocations[i].configText,
                  b.invocations[i].configText);
        EXPECT_EQ(a.invocations[i].complete, b.invocations[i].complete);
        ASSERT_EQ(a.invocations[i].cells.size(),
                  b.invocations[i].cells.size());
        for (std::size_t j = 0; j < a.invocations[i].cells.size(); ++j)
            expectSameCell(a.invocations[i].cells[j],
                           b.invocations[i].cells[j]);
    }
}

std::string
serializeToText(const ckpt::CheckpointLedger &ledger)
{
    std::ostringstream os;
    ckpt::serializeLedger(os, ledger);
    return os.str();
}

ckpt::CheckpointLedger
deserializeFromText(const std::string &text)
{
    std::istringstream is(text);
    return ckpt::deserializeLedger(is);
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "ckpt_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
spill(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    ASSERT_TRUE(out.good()) << path;
}

TEST(CheckpointFormat, RoundTripIsBitExact)
{
    const ckpt::CheckpointLedger ledger = makeLedger();
    const ckpt::CheckpointLedger back =
        deserializeFromText(serializeToText(ledger));
    expectSameLedger(ledger, back);

    const MetricSet &m = back.invocations[0].cells[0].partial.metrics;
    EXPECT_EQ(m.value("engine.trials"), 448u);
    EXPECT_EQ(m.value("decoder.mesh.rounds"), 12345678901ULL);
    EXPECT_EQ(m.value("decoder.mesh.peak"), 17u);
    const MetricSet::HistogramEntry *h =
        m.histogram("decoder.mesh.growth");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->sum, 12u);
    EXPECT_EQ(h->hist.bin(3), 1u);
    EXPECT_EQ(h->hist.overflow(), 1u);
}

TEST(CheckpointFormat, SerializationIsCanonical)
{
    // Serialize → parse → serialize must be a fixed point, so resumed
    // runs rewrite the file they read without gratuitous churn.
    const std::string once = serializeToText(makeLedger());
    EXPECT_EQ(once, serializeToText(deserializeFromText(once)));
}

TEST(CheckpointFormat, MaskedMetricsAreExcluded)
{
    ckpt::CheckpointLedger ledger = makeLedger();
    MetricSet &m = ledger.invocations[0].cells[0].partial.metrics;
    m.add("timing.span.decode.count", 7);
    m.add("sched.pool.steals", 3);
    m.add("ckpt.writes", 5);

    const ckpt::CheckpointLedger back =
        deserializeFromText(serializeToText(ledger));
    const MetricSet &r = back.invocations[0].cells[0].partial.metrics;
    EXPECT_EQ(r.value("timing.span.decode.count"), 0u);
    EXPECT_EQ(r.value("sched.pool.steals"), 0u);
    EXPECT_EQ(r.value("ckpt.writes"), 0u);
    EXPECT_EQ(r.value("engine.trials"), 448u);
}

TEST(CheckpointFormat, TruncationIsADistinctError)
{
    const std::string good = serializeToText(makeLedger());
    const std::string cut = good.substr(0, good.size() / 2);
    try {
        deserializeFromText(cut);
        FAIL() << "truncated checkpoint parsed";
    } catch (const ckpt::CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CheckpointFormat, FlippedByteIsAChecksumError)
{
    std::string text = serializeToText(makeLedger());
    // Flip one digit inside the first result line; the section
    // checksum must catch it before any content is trusted.
    const std::size_t at = text.find("\nr ");
    ASSERT_NE(at, std::string::npos);
    const std::size_t pos = at + 3;
    text[pos] = text[pos] == '9' ? '8' : '9';
    try {
        deserializeFromText(text);
        FAIL() << "corrupted checkpoint parsed";
    } catch (const ckpt::CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CheckpointFormat, HeaderCorruptionIsAChecksumError)
{
    std::string text = serializeToText(makeLedger());
    const std::size_t pos = text.find("scope ");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 6] = 'X';
    try {
        deserializeFromText(text);
        FAIL() << "corrupted header parsed";
    } catch (const ckpt::CheckpointError &e) {
        EXPECT_NE(
            std::string(e.what()).find("header checksum mismatch"),
            std::string::npos)
            << e.what();
    }
}

TEST(CheckpointFormat, WrongVersionIsADistinctError)
{
    std::string text = serializeToText(makeLedger());
    ASSERT_EQ(text.rfind("nisqpp-ckpt 1\n", 0), 0u);
    text.replace(0, 13, "nisqpp-ckpt 2");
    try {
        deserializeFromText(text);
        FAIL() << "future-version checkpoint parsed";
    } catch (const ckpt::CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "unsupported checkpoint version 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CheckpointFile, WriteThenLoadRoundTrips)
{
    const std::string path = tempPath("roundtrip.ckpt");
    const ckpt::CheckpointLedger ledger = makeLedger();
    ckpt::writeCheckpoint(path, ledger);
    expectSameLedger(ledger, ckpt::loadCheckpoint(path));
    std::remove(path.c_str());
}

TEST(CheckpointFile, MissingFileIsAClearError)
{
    try {
        ckpt::loadCheckpoint(tempPath("no_such_file.ckpt"));
        FAIL() << "missing checkpoint loaded";
    } catch (const ckpt::CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find("cannot open checkpoint"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CheckpointFile, FailedLoadLeavesTheFileUntouched)
{
    // Corruption detection must be read-only: the operator inspects
    // (or restores) the original bytes after the error.
    const std::string path = tempPath("corrupt.ckpt");
    std::string text = serializeToText(makeLedger());
    text[text.size() / 2] ^= 0x20;
    spill(path, text);
    EXPECT_THROW(ckpt::loadCheckpoint(path), ckpt::CheckpointError);
    EXPECT_EQ(slurp(path), text);
    std::remove(path.c_str());
}

TEST(CheckpointFile, WriteObserverSeesEveryWrite)
{
    const std::string path = tempPath("observer.ckpt");
    std::uint64_t calls = 0;
    ckpt::setWriteObserver([&](std::uint64_t) { ++calls; });
    ckpt::writeCheckpoint(path, makeLedger());
    ckpt::writeCheckpoint(path, makeLedger());
    ckpt::setWriteObserver(nullptr);
    ckpt::writeCheckpoint(path, makeLedger());
    EXPECT_EQ(calls, 2u);
    std::remove(path.c_str());
}

/** Death tests: the injector terminates the process by design. */
using CheckpointFaultDeathTest = ::testing::Test;

TEST(CheckpointFaultDeathTest, KillCompletesTheWriteThenExits)
{
    const std::string path = tempPath("kill.ckpt");
    std::remove(path.c_str());
    const ckpt::CheckpointLedger ledger = makeLedger();
    EXPECT_EXIT(
        {
            setenv("NISQPP_FAULT_INJECT", "kill-after=1", 1);
            ckpt::resetFaultState();
            ckpt::writeCheckpoint(path, ledger);
        },
        ::testing::ExitedWithCode(ckpt::kExitFaultInjected), "");
    // Kill mode fires after the rename: the file the dead process
    // leaves behind is complete and loadable.
    expectSameLedger(ledger, ckpt::loadCheckpoint(path));
    std::remove(path.c_str());
}

TEST(CheckpointFaultDeathTest, TornWriteNeverReachesTheFile)
{
    const std::string path = tempPath("tear.ckpt");
    const ckpt::CheckpointLedger original = makeLedger();
    ckpt::writeCheckpoint(path, original);
    const std::string goodBytes = slurp(path);

    ckpt::CheckpointLedger bigger = original;
    bigger.invocations[1].complete = true;
    EXPECT_EXIT(
        {
            setenv("NISQPP_FAULT_INJECT", "tear-after=1", 1);
            ckpt::resetFaultState();
            ckpt::writeCheckpoint(path, bigger);
        },
        ::testing::ExitedWithCode(ckpt::kExitFaultInjected), "");
    // Tear mode dies mid-payload before the rename: the previous good
    // checkpoint is byte-identical, and only the temp file is torn.
    EXPECT_EQ(slurp(path), goodBytes);
    expectSameLedger(original, ckpt::loadCheckpoint(path));
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

} // namespace
} // namespace nisqpp
