/** @file NISQPP_CKPT_INTERVAL environment validation: malformed
 * cadences must warn and keep the previous setting, exactly like
 * NISQPP_TRIALS and NISQPP_BATCH. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "ckpt/checkpoint.hh"

namespace nisqpp {
namespace {

/** Scoped NISQPP_CKPT_INTERVAL override restoring the prior value. */
class IntervalEnv
{
  public:
    explicit IntervalEnv(const char *value)
    {
        const char *prior = std::getenv("NISQPP_CKPT_INTERVAL");
        if (prior) {
            saved_ = prior;
            hadValue_ = true;
        }
        if (value)
            setenv("NISQPP_CKPT_INTERVAL", value, 1);
        else
            unsetenv("NISQPP_CKPT_INTERVAL");
    }
    ~IntervalEnv()
    {
        if (hadValue_)
            setenv("NISQPP_CKPT_INTERVAL", saved_.c_str(), 1);
        else
            unsetenv("NISQPP_CKPT_INTERVAL");
    }

  private:
    std::string saved_;
    bool hadValue_ = false;
};

TEST(CkptIntervalEnv, UnsetKeepsFallback)
{
    IntervalEnv env(nullptr);
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(32), 32u);
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(7), 7u);
}

TEST(CkptIntervalEnv, ValidValueIsUsed)
{
    IntervalEnv env("128");
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(32), 128u);
}

TEST(CkptIntervalEnv, OneIsValid)
{
    IntervalEnv env("1");
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(32), 1u);
}

TEST(CkptIntervalEnv, MaxIsValid)
{
    IntervalEnv env(
        std::to_string(ckpt::kMaxCheckpointInterval).c_str());
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(32),
              ckpt::kMaxCheckpointInterval);
}

TEST(CkptIntervalEnv, ExponentNotationIsAcceptedWhenIntegral)
{
    // Parsed with strtod like every other nisqpp env knob, so
    // integral exponent notation works uniformly.
    IntervalEnv env("1e3");
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(32), 1000u);
}

TEST(CkptIntervalEnv, ZeroRejectedKeepsPrevious)
{
    IntervalEnv env("0");
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(32), 32u);
}

TEST(CkptIntervalEnv, NegativeRejectedKeepsPrevious)
{
    IntervalEnv env("-4");
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(32), 32u);
}

TEST(CkptIntervalEnv, FractionalRejectedKeepsPrevious)
{
    IntervalEnv env("2.5");
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(32), 32u);
}

TEST(CkptIntervalEnv, NonNumericRejectedKeepsPrevious)
{
    IntervalEnv env("often");
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(32), 32u);
}

TEST(CkptIntervalEnv, TrailingJunkRejectedKeepsPrevious)
{
    IntervalEnv env("12x");
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(32), 32u);
}

TEST(CkptIntervalEnv, AboveMaxRejectedKeepsPrevious)
{
    IntervalEnv env("1000000001");
    EXPECT_EQ(ckpt::checkpointIntervalFromEnv(32), 32u);
}

} // namespace
} // namespace nisqpp
