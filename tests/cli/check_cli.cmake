# CLI contract tests for nisqpp_run, driven by CTest:
#   cmake -DNISQPP_RUN=<binary> -P check_cli.cmake
# Every unknown scenario/format/flag must fail with a non-zero exit
# and a helpful message; the happy paths must keep working.

if(NOT NISQPP_RUN)
  message(FATAL_ERROR "pass -DNISQPP_RUN=<path to nisqpp_run>")
endif()

set(failures 0)

# check_cli(<name> <expect_rc_zero?> <stream> <must_match_regex> args...)
# stream is OUT or ERR: which stream the regex must match.
function(check_cli name expect_zero stream pattern)
  execute_process(COMMAND ${NISQPP_RUN} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  set(ok TRUE)
  if(expect_zero AND NOT rc EQUAL 0)
    set(ok FALSE)
    message(WARNING "${name}: expected exit 0, got ${rc}")
  endif()
  if(NOT expect_zero AND rc EQUAL 0)
    set(ok FALSE)
    message(WARNING "${name}: expected non-zero exit, got 0")
  endif()
  if(stream STREQUAL "OUT")
    set(text "${out}")
  else()
    set(text "${err}")
  endif()
  if(NOT text MATCHES "${pattern}")
    set(ok FALSE)
    message(WARNING "${name}: ${stream} did not match '${pattern}':\n"
                    "stdout: ${out}\nstderr: ${err}")
  endif()
  if(NOT ok)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
  else()
    message(STATUS "${name}: ok")
  endif()
endfunction()

# Rejections: non-zero exit + a message that names the problem.
check_cli(unknown_scenario FALSE ERR
          "unknown scenario 'fig99_bogus'.*--list"
          --scenario fig99_bogus)
check_cli(unknown_scenario_positional FALSE ERR
          "unknown scenario 'fig99_bogus'"
          fig99_bogus)
check_cli(unknown_format FALSE ERR
          "--format: expected table, csv or json"
          --scenario fig01_sqv --format yaml)
check_cli(unknown_flag FALSE ERR
          "unknown argument '--frobnicate'"
          --frobnicate)
check_cli(negative_seed FALSE ERR
          "--seed: expected an unsigned 64-bit integer"
          --scenario fig01_sqv --seed -5)
check_cli(missing_scenario FALSE ERR
          "usage: nisqpp_run"
          --threads 2)
check_cli(bad_threads FALSE ERR
          "--threads: expected an integer"
          --scenario fig01_sqv --threads 1.5)
check_cli(bad_trials_scale_junk FALSE ERR
          "--trials-scale: expected a number"
          --scenario fig01_sqv --trials-scale 1.5x)

# --escalate-threshold parses strictly (no trailing junk) and only
# accepts fractions in [0, 1].
check_cli(bad_escalate_junk FALSE ERR
          "--escalate-threshold: expected a number"
          tiered_decode --escalate-threshold 0.5x)
check_cli(bad_escalate_above_one FALSE ERR
          "--escalate-threshold: expected a fraction in \\[0, 1\\]"
          tiered_decode --escalate-threshold 1.5)
check_cli(bad_escalate_negative FALSE ERR
          "--escalate-threshold: expected a fraction in \\[0, 1\\]"
          tiered_decode --escalate-threshold -0.5)
check_cli(escalate_missing_value FALSE ERR
          "--escalate-threshold: missing value"
          tiered_decode --escalate-threshold)

# Fault-injection flags fail hard at parse time (the
# NISQPP_STREAM_FAULTS env path warns and disables instead; covered by
# tests/common/test_fault_env.cc). All six rate flags share one parse
# contract, so one flag's rejection cases cover the family.
check_cli(bad_fault_rate_above_one FALSE ERR
          "--fault-drop: expected a fraction in \\[0, 1\\]"
          fault_sweep --fault-drop 1.5)
check_cli(bad_fault_rate_negative FALSE ERR
          "--fault-corrupt: expected a fraction in \\[0, 1\\]"
          fault_sweep --fault-corrupt -0.1)
check_cli(bad_fault_rate_junk FALSE ERR
          "--fault-drop: expected a number"
          fault_sweep --fault-drop abc)
check_cli(fault_rate_missing_value FALSE ERR
          "--fault-stall: missing value"
          fault_sweep --fault-stall)
check_cli(bad_fault_seed_negative FALSE ERR
          "--fault-seed: expected an unsigned 64-bit integer"
          fault_sweep --fault-seed -1)
check_cli(bad_fault_seed_junk FALSE ERR
          "--fault-seed: expected an unsigned 64-bit integer"
          fault_sweep --fault-seed 12nope)
check_cli(bad_deadline_zero FALSE ERR
          "--deadline-ns: expected a positive number"
          fault_sweep --deadline-ns 0)
check_cli(bad_deadline_negative FALSE ERR
          "--deadline-ns: expected a positive number"
          fault_sweep --deadline-ns -5)
check_cli(bad_deadline_junk FALSE ERR
          "--deadline-ns: expected a number"
          fault_sweep --deadline-ns soon)

# Pinning flags collapse fault_sweep's rate grid to one labeled point.
check_cli(fault_pin_happy TRUE OUT "pinned"
          fault_sweep --trials-scale 0.02 --format csv
          --fault-drop 0.1 --fault-seed 7 --deadline-ns 700)

# Bad --batch values are rejected at the flag level (the NISQPP_BATCH
# env path warns and keeps the previous setting instead; covered by
# tests/engine/test_batch_env.cc).
check_cli(bad_batch_zero FALSE ERR
          "--batch: expected an integer"
          --scenario fig01_sqv --batch 0)
check_cli(bad_batch_negative FALSE ERR
          "--batch: expected an integer"
          --scenario fig01_sqv --batch -4)

# Bad --simd widths are rejected at the flag level (the NISQPP_SIMD
# env path warns and keeps the CPUID default instead; covered by
# tests/common/test_simd.cc). Happy path: any named width runs.
check_cli(bad_simd_width FALSE ERR
          "--simd: expected scalar, v256 or v512"
          --scenario fig01_sqv --simd avx2)
check_cli(bad_simd_case FALSE ERR
          "--simd: expected scalar, v256 or v512"
          --scenario fig01_sqv --simd V512)
check_cli(simd_missing_value FALSE ERR
          "--simd: missing value"
          fig01_sqv --simd)
check_cli(simd_happy_scalar TRUE OUT "SQV"
          fig01_sqv --trials-scale 0.05 --simd scalar)

# Observability sinks fail fast on unwritable paths: the run must not
# start (and then silently lose its report) when the file can't open.
check_cli(bad_metrics_out FALSE ERR
          "cannot open --metrics-out"
          fig01_sqv --metrics-out /nonexistent-dir/metrics.json)
check_cli(bad_trace_out FALSE ERR
          "cannot open --trace-out"
          fig01_sqv --trace-out /nonexistent-dir/trace.json)
check_cli(metrics_out_missing_value FALSE ERR
          "--metrics-out: missing value"
          fig01_sqv --metrics-out)

# Happy path: the report lands on disk as a versioned JSON document
# with the deterministic counters section, and the trace file is a
# chrome://tracing document.
set(metrics_file ${CMAKE_CURRENT_BINARY_DIR}/cli_metrics.json)
set(trace_file ${CMAKE_CURRENT_BINARY_DIR}/cli_trace.json)
file(REMOVE ${metrics_file} ${trace_file})
check_cli(metrics_out_happy TRUE OUT "SQV"
          fig01_sqv --metrics-out ${metrics_file}
          --trace-out ${trace_file})
if(EXISTS ${metrics_file})
  file(READ ${metrics_file} metrics_text)
  if(NOT metrics_text MATCHES "\"schema\":\"nisqpp.run-report\"" OR
     NOT metrics_text MATCHES "\"counters\":")
    math(EXPR failures "${failures} + 1")
    message(WARNING "metrics_out_content: run report malformed:\n"
                    "${metrics_text}")
  else()
    message(STATUS "metrics_out_content: ok")
  endif()
else()
  math(EXPR failures "${failures} + 1")
  message(WARNING "metrics_out_content: no file at ${metrics_file}")
endif()
if(EXISTS ${trace_file})
  file(READ ${trace_file} trace_text)
  if(NOT trace_text MATCHES "^\\{\"traceEvents\":\\[")
    math(EXPR failures "${failures} + 1")
    message(WARNING "trace_out_content: trace malformed:\n"
                    "${trace_text}")
  else()
    message(STATUS "trace_out_content: ok")
  endif()
else()
  math(EXPR failures "${failures} + 1")
  message(WARNING "trace_out_content: no file at ${trace_file}")
endif()
file(REMOVE ${metrics_file} ${trace_file})

# Checkpoint flags: malformed cadences and dangling flags are rejected
# at parse time; resuming a file that isn't there (or isn't a
# checkpoint) is a clear, non-zero error.
check_cli(bad_ckpt_interval_zero FALSE ERR
          "--checkpoint-interval: expected an integer"
          fig01_sqv --checkpoint x.ckpt --checkpoint-interval 0)
check_cli(bad_ckpt_interval_fractional FALSE ERR
          "--checkpoint-interval: expected an integer"
          fig01_sqv --checkpoint x.ckpt --checkpoint-interval 2.5)
check_cli(bad_ckpt_interval_junk FALSE ERR
          "--checkpoint-interval: expected a number"
          fig01_sqv --checkpoint x.ckpt --checkpoint-interval often)
check_cli(ckpt_interval_requires_path FALSE ERR
          "--checkpoint-interval requires --checkpoint or --resume"
          fig01_sqv --checkpoint-interval 8)
check_cli(checkpoint_missing_value FALSE ERR
          "--checkpoint: missing value"
          fig01_sqv --checkpoint)
check_cli(resume_missing_file FALSE ERR
          "cannot resume: cannot open checkpoint"
          fig10_final --resume /nonexistent-dir/none.ckpt)
set(garbage_ckpt ${CMAKE_CURRENT_BINARY_DIR}/cli_garbage.ckpt)
file(WRITE ${garbage_ckpt} "not a checkpoint\n")
check_cli(resume_garbage_file FALSE ERR
          "cannot resume:"
          fig10_final --resume ${garbage_ckpt})
file(REMOVE ${garbage_ckpt})

# Report writers must notice a sink that accepts the open but fails
# the write (full disk): exit non-zero with the file named.
if(EXISTS /dev/full)
  check_cli(metrics_out_full_disk FALSE ERR
            "write failed: --metrics-out '/dev/full'"
            fig01_sqv --metrics-out /dev/full)
endif()

# Checkpointed and resumed runs print the same bytes as a plain run:
# the determinism contract survives the CLI round trip.
set(cli_ckpt ${CMAKE_CURRENT_BINARY_DIR}/cli_roundtrip.ckpt)
file(REMOVE ${cli_ckpt})
set(ckpt_args fig10_final --format csv --threads 2
    --trials-scale 0.01 --shard-trials 64)
execute_process(COMMAND ${NISQPP_RUN} ${ckpt_args}
                RESULT_VARIABLE plain_rc OUTPUT_VARIABLE plain_out
                ERROR_VARIABLE plain_err)
execute_process(COMMAND ${NISQPP_RUN} ${ckpt_args}
                        --checkpoint ${cli_ckpt}
                RESULT_VARIABLE ckpt_rc OUTPUT_VARIABLE ckpt_out
                ERROR_VARIABLE ckpt_err)
execute_process(COMMAND ${NISQPP_RUN} ${ckpt_args}
                        --resume ${cli_ckpt}
                RESULT_VARIABLE resume_rc OUTPUT_VARIABLE resume_out
                ERROR_VARIABLE resume_err)
if(NOT plain_rc EQUAL 0 OR NOT ckpt_rc EQUAL 0 OR
   NOT resume_rc EQUAL 0)
  math(EXPR failures "${failures} + 1")
  message(WARNING "checkpoint_roundtrip: exits ${plain_rc}/${ckpt_rc}/"
                  "${resume_rc}:\n${plain_err}${ckpt_err}${resume_err}")
elseif(NOT ckpt_out STREQUAL plain_out OR
       NOT resume_out STREQUAL plain_out)
  math(EXPR failures "${failures} + 1")
  message(WARNING "checkpoint_roundtrip: checkpointed or resumed "
                  "stdout differs from the plain run")
else()
  message(STATUS "checkpoint_roundtrip: ok")
endif()
file(REMOVE ${cli_ckpt})

# Happy paths stay intact. --list must print one-line descriptions
# sourced from the registry (name  -  description), not bare names.
check_cli(list_names TRUE OUT "streaming_backlog" --list)
check_cli(list_descriptions TRUE OUT
          "noise_zoo  -  every noise channel x every decoder" --list)
check_cli(list_windowed_description TRUE OUT
          "fig10_measurement  -  PL vs p under faulty measurement"
          --list)
check_cli(list_tiered_description TRUE OUT
          "tiered_decode  -  tiered mesh-first decoding" --list)
check_cli(flagged_scenario TRUE OUT "SQV" --scenario fig01_sqv)
check_cli(positional_scenario TRUE OUT "SQV" fig01_sqv)
check_cli(json_document TRUE OUT "^\\{\"tables\":\\["
          table2_cells --format json)

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} CLI check(s) failed")
endif()
