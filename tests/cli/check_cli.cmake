# CLI contract tests for nisqpp_run, driven by CTest:
#   cmake -DNISQPP_RUN=<binary> -P check_cli.cmake
# Every unknown scenario/format/flag must fail with a non-zero exit
# and a helpful message; the happy paths must keep working.

if(NOT NISQPP_RUN)
  message(FATAL_ERROR "pass -DNISQPP_RUN=<path to nisqpp_run>")
endif()

set(failures 0)

# check_cli(<name> <expect_rc_zero?> <stream> <must_match_regex> args...)
# stream is OUT or ERR: which stream the regex must match.
function(check_cli name expect_zero stream pattern)
  execute_process(COMMAND ${NISQPP_RUN} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  set(ok TRUE)
  if(expect_zero AND NOT rc EQUAL 0)
    set(ok FALSE)
    message(WARNING "${name}: expected exit 0, got ${rc}")
  endif()
  if(NOT expect_zero AND rc EQUAL 0)
    set(ok FALSE)
    message(WARNING "${name}: expected non-zero exit, got 0")
  endif()
  if(stream STREQUAL "OUT")
    set(text "${out}")
  else()
    set(text "${err}")
  endif()
  if(NOT text MATCHES "${pattern}")
    set(ok FALSE)
    message(WARNING "${name}: ${stream} did not match '${pattern}':\n"
                    "stdout: ${out}\nstderr: ${err}")
  endif()
  if(NOT ok)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
  else()
    message(STATUS "${name}: ok")
  endif()
endfunction()

# Rejections: non-zero exit + a message that names the problem.
check_cli(unknown_scenario FALSE ERR
          "unknown scenario 'fig99_bogus'.*--list"
          --scenario fig99_bogus)
check_cli(unknown_scenario_positional FALSE ERR
          "unknown scenario 'fig99_bogus'"
          fig99_bogus)
check_cli(unknown_format FALSE ERR
          "--format: expected table, csv or json"
          --scenario fig01_sqv --format yaml)
check_cli(unknown_flag FALSE ERR
          "unknown argument '--frobnicate'"
          --frobnicate)
check_cli(negative_seed FALSE ERR
          "--seed: expected an unsigned 64-bit integer"
          --scenario fig01_sqv --seed -5)
check_cli(missing_scenario FALSE ERR
          "usage: nisqpp_run"
          --threads 2)
check_cli(bad_threads FALSE ERR
          "--threads: expected an integer"
          --scenario fig01_sqv --threads 1.5)

# Bad --batch values are rejected at the flag level (the NISQPP_BATCH
# env path warns and keeps the previous setting instead; covered by
# tests/engine/test_batch_env.cc).
check_cli(bad_batch_zero FALSE ERR
          "--batch: expected an integer"
          --scenario fig01_sqv --batch 0)
check_cli(bad_batch_negative FALSE ERR
          "--batch: expected an integer"
          --scenario fig01_sqv --batch -4)

# Happy paths stay intact. --list must print one-line descriptions
# sourced from the registry (name  -  description), not bare names.
check_cli(list_names TRUE OUT "streaming_backlog" --list)
check_cli(list_descriptions TRUE OUT
          "noise_zoo  -  every noise channel x every decoder" --list)
check_cli(list_windowed_description TRUE OUT
          "fig10_measurement  -  PL vs p under faulty measurement"
          --list)
check_cli(flagged_scenario TRUE OUT "SQV" --scenario fig01_sqv)
check_cli(positional_scenario TRUE OUT "SQV" fig01_sqv)
check_cli(json_document TRUE OUT "^\\{\"tables\":\\["
          table2_cells --format json)

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} CLI check(s) failed")
endif()
