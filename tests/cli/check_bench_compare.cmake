# Counter-drift contract of bench_compare's run-report mode, driven by
# CTest:
#   cmake -DBENCH_COMPARE=<binary> -P check_bench_compare.cmake
# Identical deterministic sections pass; a changed, missing or added
# counter must hard-fail with a message naming the drift; mixing a run
# report with a hotpath artifact is an input error.

if(NOT BENCH_COMPARE)
  message(FATAL_ERROR "pass -DBENCH_COMPARE=<path to bench_compare>")
endif()

set(failures 0)
set(workdir ${CMAKE_CURRENT_BINARY_DIR}/bench_compare_counters)
file(MAKE_DIRECTORY ${workdir})

set(baseline_json "{\"schema\":\"nisqpp.run-report\",\"version\":1,\
\"scenario\":\"fig10_final\",\"config\":{\"threads\":1},\
\"counters\":{\"engine.trials\":12800,\"engine.failures\":37},\
\"histograms\":{\"decoder.uf.growth_rounds\":{\"count\":2,\"sum\":5,\
\"overflow\":0,\"bins\":{\"2\":1,\"3\":1}}},\
\"timing\":{\"timing.span.decode.count\":99}}")
file(WRITE ${workdir}/baseline.json "${baseline_json}")

# Identical counters with a different (masked) timing section: pass.
string(REPLACE "\"timing.span.decode.count\":99"
               "\"timing.span.decode.count\":123456"
               identical_json "${baseline_json}")
file(WRITE ${workdir}/identical.json "${identical_json}")

# One counter value changed: drift.
string(REPLACE "\"engine.trials\":12800" "\"engine.trials\":12801"
               drift_json "${baseline_json}")
file(WRITE ${workdir}/drift.json "${drift_json}")

# One counter missing: drift.
string(REPLACE ",\"engine.failures\":37" "" missing_json
               "${baseline_json}")
file(WRITE ${workdir}/missing.json "${missing_json}")

# A histogram bin changed: drift.
string(REPLACE "\"bins\":{\"2\":1,\"3\":1}" "\"bins\":{\"2\":2}"
               hist_json "${baseline_json}")
file(WRITE ${workdir}/hist.json "${hist_json}")

# Not a run report at all: input error, not a silent pass.
file(WRITE ${workdir}/hotpathish.json "{\"tables\":[]}")

# check(<name> <expect_rc_zero?> <must_match_regex> current.json)
function(check name expect_zero pattern current)
  execute_process(COMMAND ${BENCH_COMPARE} ${workdir}/baseline.json
                          ${workdir}/${current}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  set(ok TRUE)
  if(expect_zero AND NOT rc EQUAL 0)
    set(ok FALSE)
    message(WARNING "${name}: expected exit 0, got ${rc}\n${err}")
  endif()
  if(NOT expect_zero AND rc EQUAL 0)
    set(ok FALSE)
    message(WARNING "${name}: expected non-zero exit, got 0\n${out}")
  endif()
  if(NOT "${out}${err}" MATCHES "${pattern}")
    set(ok FALSE)
    message(WARNING "${name}: output did not match '${pattern}':\n"
                    "stdout: ${out}\nstderr: ${err}")
  endif()
  if(NOT ok)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
  else()
    message(STATUS "${name}: ok")
  endif()
endfunction()

check(identical_reports TRUE "no drift" identical.json)
check(self_compare TRUE "no drift" baseline.json)
check(changed_counter FALSE "engine.trials drift: 12800 -> 12801"
      drift.json)
check(missing_counter FALSE "engine.failures missing" missing.json)
check(changed_histogram FALSE "histograms.decoder.uf.growth_rounds"
      hist.json)
check(mixed_inputs FALSE "cannot compare a run report" hotpathish.json)

file(REMOVE_RECURSE ${workdir})

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} bench_compare check(s) failed")
endif()
