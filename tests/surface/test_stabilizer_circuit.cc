/**
 * @file Tests that the Fig. 3 stabilizer circuits, executed on the
 * Pauli-frame simulator, reproduce direct parity extraction.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "surface/error_model.hh"
#include "surface/stabilizer_circuit.hh"

namespace nisqpp {
namespace {

class CircuitParam : public ::testing::TestWithParam<int>
{
};

TEST_P(CircuitParam, MatchesDirectExtractionOnRandomErrors)
{
    // Property test: for random depolarizing errors, running the full
    // stabilizer measurement circuits gives exactly the direct-parity
    // syndrome, for both ancilla families.
    const int d = GetParam();
    SurfaceLattice lat(d);
    StabilizerCircuit circuit(lat);
    DepolarizingModel model(0.15);
    Rng rng(0xfeedULL + d);
    for (int trial = 0; trial < 100; ++trial) {
        ErrorState st(lat);
        model.sample(rng, st);
        for (ErrorType type : {ErrorType::Z, ErrorType::X}) {
            const Syndrome via_circuit = circuit.extract(st, type);
            const Syndrome direct = extractSyndrome(st, type);
            ASSERT_EQ(via_circuit, direct)
                << "d=" << d << " trial=" << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, CircuitParam,
                         ::testing::Values(2, 3, 5, 7));

TEST(StabilizerCircuit, ScheduleShape)
{
    SurfaceLattice lat(3);
    StabilizerCircuit circuit(lat);
    // Each X-ancilla schedule: reset, H, CNOTs, H, measure.
    int measures = 0, hs = 0, resets = 0;
    for (const auto &op : circuit.schedule(ErrorType::Z)) {
        measures += op.kind == StabilizerCircuit::OpKind::Measure;
        hs += op.kind == StabilizerCircuit::OpKind::H;
        resets += op.kind == StabilizerCircuit::OpKind::Reset;
    }
    EXPECT_EQ(measures, lat.numXAncilla());
    EXPECT_EQ(resets, lat.numXAncilla());
    EXPECT_EQ(hs, 2 * lat.numXAncilla());
    // Z-ancilla schedules have no Hadamards.
    for (const auto &op : circuit.schedule(ErrorType::X))
        EXPECT_NE(op.kind, StabilizerCircuit::OpKind::H);
}

TEST(StabilizerCircuit, MeasurementIsNondestructiveToData)
{
    // Measuring the stabilizers must not alter the data error pattern.
    SurfaceLattice lat(3);
    StabilizerCircuit circuit(lat);
    ErrorState st(lat);
    st.inject(lat.dataIndex({2, 2}), Pauli::Z);

    PauliFrame frame(lat.numSites());
    circuit.loadErrors(frame, st);
    circuit.measure(frame, ErrorType::Z);
    // The data qubit's Z frame is intact after the round.
    EXPECT_EQ(frame.frame(lat.siteIndex({2, 2})), Pauli::Z);
}

TEST(StabilizerCircuit, RepeatedRoundsAreStable)
{
    // With a static error pattern, consecutive measurement rounds give
    // identical syndromes (perfect-measurement regime).
    SurfaceLattice lat(5);
    StabilizerCircuit circuit(lat);
    ErrorState st(lat);
    st.inject(lat.dataIndex({0, 2}), Pauli::Z);
    st.inject(lat.dataIndex({3, 3}), Pauli::Z);

    PauliFrame frame(lat.numSites());
    circuit.loadErrors(frame, st);
    const Syndrome first = circuit.measure(frame, ErrorType::Z);
    const Syndrome second = circuit.measure(frame, ErrorType::Z);
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace nisqpp
