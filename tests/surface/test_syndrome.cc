/** @file Tests for syndrome extraction (paper Fig. 2 scenarios). */

#include <gtest/gtest.h>

#include "surface/syndrome.hh"

namespace nisqpp {
namespace {

/** Parameterized over code distance. */
class SyndromeParam : public ::testing::TestWithParam<int>
{
};

TEST_P(SyndromeParam, SingleErrorFiresItsAncillas)
{
    // Every single data error of either type flips exactly its
    // detecting ancillas (Fig. 2 (b)/(c)).
    const int d = GetParam();
    SurfaceLattice lat(d);
    for (ErrorType type : {ErrorType::X, ErrorType::Z}) {
        for (int q = 0; q < lat.numData(); ++q) {
            ErrorState st(lat);
            st.inject(q, type == ErrorType::Z ? Pauli::Z : Pauli::X);
            const Syndrome syn = extractSyndrome(st, type);
            const auto &expected = lat.dataAncillaNeighbors(type, q);
            EXPECT_EQ(syn.weight(),
                      static_cast<int>(expected.size()));
            for (int a : expected)
                EXPECT_TRUE(syn.hot(a));
        }
    }
}

TEST_P(SyndromeParam, ChainFiresOnlyEndpoints)
{
    // A horizontal Z chain fires only its endpoint ancillas (Fig. 4a).
    const int d = GetParam();
    SurfaceLattice lat(d);
    ErrorState st(lat);
    const int row = (d / 2) * 2; // any even row
    for (int c = 2; c <= 2 * d - 4; c += 2)
        st.inject(lat.dataIndex({row, c}), Pauli::Z);
    const Syndrome syn = extractSyndrome(st, ErrorType::Z);
    EXPECT_EQ(syn.weight(), 2);
    EXPECT_TRUE(syn.hot(lat.ancillaIndex(ErrorType::Z, {row, 1})));
    EXPECT_TRUE(
        syn.hot(lat.ancillaIndex(ErrorType::Z, {row, 2 * d - 3})));
}

TEST_P(SyndromeParam, FullCrossingChainIsInvisible)
{
    // A full west-to-east chain produces no syndrome: the undetectable
    // logical error of Section II-C2.
    const int d = GetParam();
    SurfaceLattice lat(d);
    ErrorState st(lat);
    const int row = 0;
    for (int c = 0; c <= 2 * d - 2; c += 2)
        st.inject(lat.dataIndex({row, c}), Pauli::Z);
    EXPECT_EQ(extractSyndrome(st, ErrorType::Z).weight(), 0);
}

TEST_P(SyndromeParam, YErrorFiresBothFamilies)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    ErrorState st(lat);
    const int q = lat.dataIndex({1, 1});
    st.inject(q, Pauli::Y);
    EXPECT_GT(extractSyndrome(st, ErrorType::Z).weight(), 0);
    EXPECT_GT(extractSyndrome(st, ErrorType::X).weight(), 0);
}

INSTANTIATE_TEST_SUITE_P(Distances, SyndromeParam,
                         ::testing::Values(3, 5, 7, 9));

TEST(Syndrome, DegenerateErrorPatternsShareSyndrome)
{
    // Fig. 4 (b)/(c): two distinct equal-weight patterns with the same
    // endpoints generate identical syndromes.
    SurfaceLattice lat(5);
    ErrorState a(lat), b(lat);
    // Pattern 1: east then south; pattern 2: south then east.
    a.inject(lat.dataIndex({0, 2}), Pauli::Z);
    a.inject(lat.dataIndex({1, 3}), Pauli::Z);
    b.inject(lat.dataIndex({1, 1}), Pauli::Z);
    b.inject(lat.dataIndex({2, 2}), Pauli::Z);
    EXPECT_EQ(extractSyndrome(a, ErrorType::Z),
              extractSyndrome(b, ErrorType::Z));
    EXPECT_EQ(a.weight(), b.weight());
}

TEST(Syndrome, HotListMatchesBits)
{
    SurfaceLattice lat(3);
    ErrorState st(lat);
    st.inject(lat.dataIndex({1, 1}), Pauli::Z);
    const Syndrome syn = extractSyndrome(st, ErrorType::Z);
    const auto hot = syn.hotList();
    EXPECT_EQ(static_cast<int>(hot.size()), syn.weight());
    for (int a : hot)
        EXPECT_TRUE(syn.hot(a));
}

TEST(Syndrome, SyndromeOfFlipsHelper)
{
    SurfaceLattice lat(3);
    const Syndrome direct = syndromeOfFlips(
        lat, ErrorType::Z, {lat.dataIndex({0, 0})});
    EXPECT_EQ(direct.weight(), 1);
}

} // namespace
} // namespace nisqpp
