/** @file Geometry tests for the planar surface code lattice. */

#include <gtest/gtest.h>

#include "surface/lattice.hh"

namespace nisqpp {
namespace {

/** Parameterized over code distance. */
class LatticeParam : public ::testing::TestWithParam<int>
{
};

TEST_P(LatticeParam, QubitCounts)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    EXPECT_EQ(lat.gridSize(), 2 * d - 1);
    EXPECT_EQ(lat.numData(), d * d + (d - 1) * (d - 1));
    EXPECT_EQ(lat.numXAncilla(), d * (d - 1));
    EXPECT_EQ(lat.numZAncilla(), d * (d - 1));
    EXPECT_EQ(lat.numSites(),
              lat.numData() + lat.numXAncilla() + lat.numZAncilla());
}

TEST_P(LatticeParam, RolePartition)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    for (int r = 0; r < lat.gridSize(); ++r) {
        for (int c = 0; c < lat.gridSize(); ++c) {
            const SiteRole role = lat.role({r, c});
            if ((r + c) % 2 == 0)
                EXPECT_EQ(role, SiteRole::Data);
            else if (r % 2 == 0)
                EXPECT_EQ(role, SiteRole::AncillaX);
            else
                EXPECT_EQ(role, SiteRole::AncillaZ);
        }
    }
}

TEST_P(LatticeParam, AncillaNeighborsAreAdjacentData)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    for (ErrorType type : {ErrorType::X, ErrorType::Z}) {
        for (int a = 0; a < lat.numAncilla(type); ++a) {
            const Coord ca = lat.ancillaCoord(type, a);
            const auto &nbrs = lat.ancillaDataNeighbors(type, a);
            EXPECT_GE(nbrs.size(), 2u);
            EXPECT_LE(nbrs.size(), 4u);
            for (int di : nbrs) {
                const Coord cd = lat.dataCoord(di);
                EXPECT_EQ(std::abs(ca.row - cd.row) +
                              std::abs(ca.col - cd.col),
                          1);
            }
        }
    }
}

TEST_P(LatticeParam, DataAncillaConsistency)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    for (ErrorType type : {ErrorType::X, ErrorType::Z}) {
        for (int q = 0; q < lat.numData(); ++q) {
            const auto &ancs = lat.dataAncillaNeighbors(type, q);
            EXPECT_GE(ancs.size(), 1u);
            EXPECT_LE(ancs.size(), 2u);
            for (int a : ancs) {
                const auto &back = lat.ancillaDataNeighbors(type, a);
                EXPECT_NE(std::find(back.begin(), back.end(), q),
                          back.end());
            }
        }
    }
}

TEST_P(LatticeParam, BoundaryDataCount)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    // Z-error chains terminate on west/east columns: d data qubits on
    // each side (even rows).
    int z_boundary = 0, x_boundary = 0;
    for (int q = 0; q < lat.numData(); ++q) {
        z_boundary += lat.touchesBoundary(ErrorType::Z, q);
        x_boundary += lat.touchesBoundary(ErrorType::X, q);
    }
    EXPECT_EQ(z_boundary, 2 * d);
    EXPECT_EQ(x_boundary, 2 * d);
}

TEST_P(LatticeParam, LogicalSupportsCrossTheLattice)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    EXPECT_EQ(static_cast<int>(
                  lat.logicalDetectorSupport(ErrorType::Z).size()),
              d);
    EXPECT_EQ(static_cast<int>(
                  lat.logicalDetectorSupport(ErrorType::X).size()),
              d);
}

INSTANTIATE_TEST_SUITE_P(Distances, LatticeParam,
                         ::testing::Values(2, 3, 4, 5, 7, 9, 11));

TEST(Lattice, PaperQubitCountAtD9)
{
    // The paper sizes the d=9 decoder mesh for 289 qubits.
    SurfaceLattice lat(9);
    EXPECT_EQ(lat.numSites(), 289);
}

TEST(Lattice, GraphDistances)
{
    SurfaceLattice lat(5);
    const ErrorType t = ErrorType::Z;
    const int a = lat.ancillaIndex(t, {0, 1});
    const int b = lat.ancillaIndex(t, {0, 3});
    const int c = lat.ancillaIndex(t, {2, 3});
    EXPECT_EQ(lat.ancillaGraphDistance(t, a, b), 1);
    EXPECT_EQ(lat.ancillaGraphDistance(t, a, c), 2);
    EXPECT_EQ(lat.ancillaGraphDistance(t, a, a), 0);
    // Symmetry.
    EXPECT_EQ(lat.ancillaGraphDistance(t, c, a), 2);
}

TEST(Lattice, BoundaryDistances)
{
    SurfaceLattice lat(5); // grid 9x9, X ancillas at odd cols
    const ErrorType t = ErrorType::Z;
    EXPECT_EQ(lat.ancillaBoundaryDistance(t, lat.ancillaIndex(t, {0, 1})),
              1);
    EXPECT_EQ(lat.ancillaBoundaryDistance(t, lat.ancillaIndex(t, {0, 7})),
              1);
    EXPECT_EQ(lat.ancillaBoundaryDistance(t, lat.ancillaIndex(t, {4, 3})),
              2);
    EXPECT_EQ(lat.ancillaBoundaryDistance(t, lat.ancillaIndex(t, {4, 5})),
              2);
}

TEST(Lattice, RejectsTinyDistance)
{
    EXPECT_DEATH(SurfaceLattice(1), "distance");
}

} // namespace
} // namespace nisqpp
