/**
 * @file Equivalence property tests of the word-packed substrate: the
 * packed ErrorState / Syndrome / extractSyndrome / crossingParity /
 * stabilizer-circuit measurement gather must produce bit-identical
 * results to retained per-element reference implementations, across
 * lattices d = 3..11 and many random seeds. These tests are the
 * contract that lets the hot paths use word operations at all.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "pauli/pauli_frame.hh"
#include "surface/error_state.hh"
#include "surface/lattice.hh"
#include "surface/logical.hh"
#include "surface/stabilizer_circuit.hh"
#include "surface/syndrome.hh"

namespace nisqpp {
namespace {

/** Byte-per-qubit mirror of an ErrorState, updated in lockstep. */
struct ReferenceState
{
    std::vector<char> x, z;

    explicit ReferenceState(int n) : x(n, 0), z(n, 0) {}
};

void
randomizeState(Rng &rng, ErrorState &state, ReferenceState &ref,
               double p)
{
    const int n = state.lattice().numData();
    for (int d = 0; d < n; ++d) {
        if (rng.bernoulli(p)) {
            state.flip(ErrorType::X, d);
            ref.x[d] ^= 1;
        }
        if (rng.bernoulli(p)) {
            state.flip(ErrorType::Z, d);
            ref.z[d] ^= 1;
        }
    }
}

TEST(PackedEquivalence, ErrorStateMatchesByteVectors)
{
    Rng rng(0xe007ULL);
    for (int d = 3; d <= 11; d += 2) {
        SurfaceLattice lat(d);
        ErrorState state(lat);
        ReferenceState ref(lat.numData());
        for (int round = 0; round < 20; ++round) {
            randomizeState(rng, state, ref, 0.15);
            int wx = 0, wz = 0, wany = 0;
            for (int q = 0; q < lat.numData(); ++q) {
                EXPECT_EQ(state.has(ErrorType::X, q),
                          static_cast<bool>(ref.x[q]));
                EXPECT_EQ(state.has(ErrorType::Z, q),
                          static_cast<bool>(ref.z[q]));
                EXPECT_EQ(state.at(q), fromXZ(ref.x[q], ref.z[q]));
                wx += ref.x[q];
                wz += ref.z[q];
                wany += ref.x[q] | ref.z[q];
            }
            EXPECT_EQ(state.weight(ErrorType::X), wx);
            EXPECT_EQ(state.weight(ErrorType::Z), wz);
            EXPECT_EQ(state.weight(), wany);
        }
    }
}

TEST(PackedEquivalence, ComposeMatchesByteXor)
{
    Rng rng(0xc0deULL);
    for (int d = 3; d <= 9; d += 2) {
        SurfaceLattice lat(d);
        ErrorState a(lat), b(lat);
        ReferenceState ra(lat.numData()), rb(lat.numData());
        randomizeState(rng, a, ra, 0.2);
        randomizeState(rng, b, rb, 0.2);
        a.compose(b);
        for (int q = 0; q < lat.numData(); ++q) {
            EXPECT_EQ(a.has(ErrorType::X, q),
                      static_cast<bool>(ra.x[q] ^ rb.x[q]));
            EXPECT_EQ(a.has(ErrorType::Z, q),
                      static_cast<bool>(ra.z[q] ^ rb.z[q]));
        }
    }
}

TEST(PackedEquivalence, ExtractionMatchesReferenceAcrossLattices)
{
    Rng rng(0x5eedULL);
    for (int d = 3; d <= 11; ++d) {
        SurfaceLattice lat(d);
        ErrorState state(lat);
        ReferenceState ref(lat.numData());
        Syndrome scratchZ(lat, ErrorType::Z);
        Syndrome scratchX(lat, ErrorType::X);
        for (int round = 0; round < 25; ++round) {
            randomizeState(rng, state, ref, 0.1);
            for (const ErrorType type : {ErrorType::Z, ErrorType::X}) {
                const Syndrome packed = extractSyndrome(state, type);
                const Syndrome reference =
                    extractSyndromeReference(state, type);
                EXPECT_EQ(packed, reference);

                Syndrome &into = type == ErrorType::Z ? scratchZ
                                                      : scratchX;
                extractSyndromeInto(state, type, into);
                EXPECT_EQ(into, reference);

                EXPECT_EQ(syndromeNonzero(state, type),
                          reference.weight() != 0);
            }
        }
    }
}

TEST(PackedEquivalence, CrossingParityMatchesSupportLoop)
{
    Rng rng(0x10f1ULL);
    for (int d = 3; d <= 11; d += 2) {
        SurfaceLattice lat(d);
        ErrorState state(lat);
        ReferenceState ref(lat.numData());
        for (int round = 0; round < 20; ++round) {
            randomizeState(rng, state, ref, 0.2);
            for (const ErrorType type : {ErrorType::Z, ErrorType::X}) {
                char parity = 0;
                for (int q : lat.logicalDetectorSupport(type))
                    parity ^= static_cast<char>(state.has(type, q));
                EXPECT_EQ(crossingParity(state, type),
                          static_cast<bool>(parity));
            }
        }
    }
}

TEST(PackedEquivalence, MeasureGatherMatchesScheduleWalk)
{
    Rng rng(0x3a7eULL);
    for (int d = 3; d <= 9; d += 2) {
        SurfaceLattice lat(d);
        StabilizerCircuit circuit(lat);
        for (int round = 0; round < 25; ++round) {
            // Arbitrary frames on every site — data AND ancilla — so
            // the equivalence covers more than freshly loaded errors.
            PauliFrame gather(lat.numSites());
            for (int q = 0; q < lat.numSites(); ++q) {
                if (rng.bernoulli(0.2))
                    gather.inject(q, Pauli::X);
                if (rng.bernoulli(0.2))
                    gather.inject(q, Pauli::Z);
            }
            PauliFrame walked = gather; // copy, identical input
            for (const ErrorType type : {ErrorType::Z, ErrorType::X}) {
                const Syndrome fast = circuit.measure(gather, type);
                const Syndrome reference =
                    circuit.measureViaSchedule(walked, type);
                EXPECT_EQ(fast, reference);
            }
            // Both frames must agree afterwards too (ancilla collapse).
            for (int q = 0; q < lat.numSites(); ++q)
                EXPECT_EQ(gather.frame(q), walked.frame(q)) << q;
        }
    }
}

TEST(PackedEquivalence, CircuitExtractionAgreesWithDirect)
{
    Rng rng(0xf00dULL);
    for (int d = 3; d <= 9; d += 2) {
        SurfaceLattice lat(d);
        StabilizerCircuit circuit(lat);
        ErrorState state(lat);
        ReferenceState ref(lat.numData());
        Syndrome intoZ(lat, ErrorType::Z), intoX(lat, ErrorType::X);
        for (int round = 0; round < 20; ++round) {
            randomizeState(rng, state, ref, 0.12);
            for (const ErrorType type : {ErrorType::Z, ErrorType::X}) {
                const Syndrome direct = extractSyndrome(state, type);
                EXPECT_EQ(circuit.extract(state, type), direct);
                Syndrome &into =
                    type == ErrorType::Z ? intoZ : intoX;
                circuit.extractInto(state, type, into);
                EXPECT_EQ(into, direct);
            }
        }
    }
}

} // namespace
} // namespace nisqpp
