/** @file Statistical tests for the error channels. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "surface/error_model.hh"

namespace nisqpp {
namespace {

TEST(Dephasing, OnlyZErrors)
{
    SurfaceLattice lat(5);
    DephasingModel model(0.5);
    Rng rng(3);
    ErrorState st(lat);
    for (int i = 0; i < 20; ++i)
        model.sample(rng, st);
    EXPECT_EQ(st.weight(ErrorType::X), 0);
}

TEST(Dephasing, RateMatches)
{
    SurfaceLattice lat(5);
    const double p = 0.1;
    DephasingModel model(p);
    Rng rng(5);
    int flips = 0;
    const int rounds = 2000;
    for (int i = 0; i < rounds; ++i) {
        ErrorState st(lat);
        model.sample(rng, st);
        flips += st.weight(ErrorType::Z);
    }
    const double rate =
        static_cast<double>(flips) / (rounds * lat.numData());
    EXPECT_NEAR(rate, p, 0.01);
}

TEST(Depolarizing, AllPaulisAppear)
{
    SurfaceLattice lat(5);
    DepolarizingModel model(0.5);
    Rng rng(7);
    int nx = 0, ny = 0, nz = 0;
    for (int i = 0; i < 200; ++i) {
        ErrorState st(lat);
        model.sample(rng, st);
        for (int q = 0; q < lat.numData(); ++q) {
            switch (st.at(q)) {
              case Pauli::X: ++nx; break;
              case Pauli::Y: ++ny; break;
              case Pauli::Z: ++nz; break;
              default: break;
            }
        }
    }
    EXPECT_GT(nx, 0);
    EXPECT_GT(ny, 0);
    EXPECT_GT(nz, 0);
    // Roughly equal proportions (p/3 each).
    const double total = nx + ny + nz;
    EXPECT_NEAR(nx / total, 1.0 / 3, 0.05);
    EXPECT_NEAR(ny / total, 1.0 / 3, 0.05);
    EXPECT_NEAR(nz / total, 1.0 / 3, 0.05);
}

TEST(Depolarizing, ZeroRateIsClean)
{
    SurfaceLattice lat(3);
    DepolarizingModel model(0.0);
    Rng rng(1);
    ErrorState st(lat);
    model.sample(rng, st);
    EXPECT_EQ(st.weight(), 0);
}

TEST(ErrorModel, RejectsBadRates)
{
    EXPECT_DEATH(DephasingModel(-0.1), "p out of");
    EXPECT_DEATH(DepolarizingModel(1.5), "p out of");
}

} // namespace
} // namespace nisqpp
