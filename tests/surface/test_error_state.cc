/** @file Tests for Pauli error state composition. */

#include <gtest/gtest.h>

#include "surface/error_state.hh"

namespace nisqpp {
namespace {

TEST(ErrorState, InjectPaulis)
{
    SurfaceLattice lat(3);
    ErrorState st(lat);
    st.inject(0, Pauli::X);
    st.inject(1, Pauli::Z);
    st.inject(2, Pauli::Y);
    EXPECT_EQ(st.at(0), Pauli::X);
    EXPECT_EQ(st.at(1), Pauli::Z);
    EXPECT_EQ(st.at(2), Pauli::Y);
    EXPECT_EQ(st.at(3), Pauli::I);
    EXPECT_EQ(st.weight(), 3);
    EXPECT_EQ(st.weight(ErrorType::X), 2); // X and Y
    EXPECT_EQ(st.weight(ErrorType::Z), 2); // Z and Y
}

TEST(ErrorState, InjectionComposes)
{
    SurfaceLattice lat(3);
    ErrorState st(lat);
    st.inject(0, Pauli::X);
    st.inject(0, Pauli::Z);
    EXPECT_EQ(st.at(0), Pauli::Y);
    st.inject(0, Pauli::Y);
    EXPECT_EQ(st.at(0), Pauli::I);
}

TEST(ErrorState, FlipIsInvolutive)
{
    SurfaceLattice lat(3);
    ErrorState st(lat);
    st.flip(ErrorType::Z, 5);
    EXPECT_TRUE(st.has(ErrorType::Z, 5));
    st.flip(ErrorType::Z, 5);
    EXPECT_FALSE(st.has(ErrorType::Z, 5));
}

TEST(ErrorState, ComposeIsXor)
{
    SurfaceLattice lat(3);
    ErrorState a(lat), b(lat);
    a.inject(0, Pauli::X);
    a.inject(1, Pauli::Z);
    b.inject(1, Pauli::Z);
    b.inject(2, Pauli::Y);
    a.compose(b);
    EXPECT_EQ(a.at(0), Pauli::X);
    EXPECT_EQ(a.at(1), Pauli::I);
    EXPECT_EQ(a.at(2), Pauli::Y);
}

TEST(ErrorState, ClearEmpties)
{
    SurfaceLattice lat(3);
    ErrorState st(lat);
    st.inject(0, Pauli::Y);
    st.clear();
    EXPECT_EQ(st.weight(), 0);
}

} // namespace
} // namespace nisqpp
