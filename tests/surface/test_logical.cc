/** @file Tests for logical failure classification. */

#include <gtest/gtest.h>

#include "surface/logical.hh"

namespace nisqpp {
namespace {

TEST(Logical, CleanStateIsNoFailure)
{
    SurfaceLattice lat(5);
    ErrorState st(lat);
    const FailureReport rep = classifyResidual(st, ErrorType::Z);
    EXPECT_FALSE(rep.failed());
}

TEST(Logical, CrossingChainIsLogicalError)
{
    SurfaceLattice lat(5);
    ErrorState st(lat);
    for (int c = 0; c <= 8; c += 2)
        st.inject(lat.dataIndex({0, c}), Pauli::Z);
    const FailureReport rep = classifyResidual(st, ErrorType::Z);
    EXPECT_FALSE(rep.syndromeNonzero);
    EXPECT_TRUE(rep.logicalFlip);
    EXPECT_TRUE(rep.failed());
}

TEST(Logical, StabilizerIsNotALogicalError)
{
    // A Z-error pattern equal to one Z-plaquette (the stabilizer family
    // that generates trivial Z patterns) has trivial syndrome and
    // trivial homology.
    SurfaceLattice lat(5);
    ErrorState st(lat);
    for (int q : lat.ancillaDataNeighbors(
             ErrorType::X, lat.ancillaIndex(ErrorType::X, {3, 2})))
        st.inject(q, Pauli::Z);
    const FailureReport rep = classifyResidual(st, ErrorType::Z);
    EXPECT_FALSE(rep.syndromeNonzero);
    EXPECT_FALSE(rep.logicalFlip);
}

TEST(Logical, DanglingErrorIsSyndromeFailure)
{
    SurfaceLattice lat(5);
    ErrorState st(lat);
    st.inject(lat.dataIndex({2, 2}), Pauli::Z);
    const FailureReport rep = classifyResidual(st, ErrorType::Z);
    EXPECT_TRUE(rep.syndromeNonzero);
    EXPECT_TRUE(rep.failed());
}

TEST(Logical, CrossingParityDependsOnHomologyNotPath)
{
    // Two homologically equivalent crossings (different rows) both
    // report a logical flip.
    SurfaceLattice lat(3);
    for (int row : {0, 2, 4}) {
        ErrorState st(lat);
        for (int c = 0; c <= 4; c += 2)
            st.inject(lat.dataIndex({row, c}), Pauli::Z);
        EXPECT_TRUE(crossingParity(st, ErrorType::Z)) << "row " << row;
    }
}

TEST(Logical, XFamilySymmetric)
{
    SurfaceLattice lat(3);
    ErrorState st(lat);
    for (int r = 0; r <= 4; r += 2)
        st.inject(lat.dataIndex({r, 0}), Pauli::X);
    const FailureReport rep = classifyResidual(st, ErrorType::X);
    EXPECT_FALSE(rep.syndromeNonzero);
    EXPECT_TRUE(rep.logicalFlip);
}

} // namespace
} // namespace nisqpp
