/** @file Multi-round detection-event window semantics. */

#include <gtest/gtest.h>

#include <vector>

#include "surface/syndrome_window.hh"

namespace nisqpp {
namespace {

Syndrome
syndromeOf(const SurfaceLattice &lat, ErrorType type,
           const std::vector<int> &hot)
{
    Syndrome s(lat, type);
    for (int a : hot)
        s.set(a, true);
    return s;
}

TEST(SyndromeWindow, EventsAreXorOfConsecutiveRounds)
{
    SurfaceLattice lat(3);
    SyndromeWindow win(lat, ErrorType::Z, 3);
    win.recordRound(0, syndromeOf(lat, ErrorType::Z, {1}));
    win.recordRound(1, syndromeOf(lat, ErrorType::Z, {1, 4}));
    win.recordRound(2, syndromeOf(lat, ErrorType::Z, {4}));

    // Round 0 events = round 0 vs the all-zero baseline.
    EXPECT_TRUE(win.event(0, 1));
    EXPECT_EQ(win.eventBits(0).popcount(), 1);
    // Round 1: ancilla 1 unchanged (no event), ancilla 4 newly hot.
    EXPECT_FALSE(win.event(1, 1));
    EXPECT_TRUE(win.event(1, 4));
    // Round 2: ancilla 1 cooled (event), ancilla 4 unchanged.
    EXPECT_TRUE(win.event(2, 1));
    EXPECT_FALSE(win.event(2, 4));
    EXPECT_EQ(win.eventWeight(), 3);
}

TEST(SyndromeWindow, BaselineShiftsRoundZeroEvents)
{
    SurfaceLattice lat(3);
    SyndromeWindow win(lat, ErrorType::Z, 2);
    win.setBaseline(syndromeOf(lat, ErrorType::Z, {2}));
    win.recordRound(0, syndromeOf(lat, ErrorType::Z, {2}));
    win.recordRound(1, syndromeOf(lat, ErrorType::Z, {2}));
    // Ancilla 2 was already hot in the carried-in frame: no events.
    EXPECT_EQ(win.eventWeight(), 0);
}

TEST(SyndromeWindow, ResetClearsRoundsAndBaseline)
{
    SurfaceLattice lat(3);
    SyndromeWindow win(lat, ErrorType::Z, 2);
    win.setBaseline(syndromeOf(lat, ErrorType::Z, {0}));
    win.recordRound(0, syndromeOf(lat, ErrorType::Z, {0, 3}));
    win.recordRound(1, syndromeOf(lat, ErrorType::Z, {3}));
    win.reset();
    EXPECT_EQ(win.recorded(), 0);
    win.recordRound(0, syndromeOf(lat, ErrorType::Z, {0}));
    // After reset the baseline is zero again: ancilla 0 fires.
    EXPECT_TRUE(win.event(0, 0));
}

TEST(SyndromeWindow, MeasurementFlipFiresTwoEvents)
{
    // A lone readout flip at round t fires events at t and t + 1 on
    // the same ancilla — the signature time-like edges absorb.
    SurfaceLattice lat(5);
    SyndromeWindow win(lat, ErrorType::Z, 4);
    win.recordRound(0, syndromeOf(lat, ErrorType::Z, {}));
    win.recordRound(1, syndromeOf(lat, ErrorType::Z, {7}));
    win.recordRound(2, syndromeOf(lat, ErrorType::Z, {}));
    win.recordRound(3, syndromeOf(lat, ErrorType::Z, {}));
    EXPECT_EQ(win.eventWeight(), 2);
    EXPECT_TRUE(win.event(1, 7));
    EXPECT_TRUE(win.event(2, 7));
}

TEST(SyndromeWindow, ForEachEventAscendingOrder)
{
    SurfaceLattice lat(3);
    SyndromeWindow win(lat, ErrorType::Z, 2);
    win.recordRound(0, syndromeOf(lat, ErrorType::Z, {5, 2}));
    win.recordRound(1, syndromeOf(lat, ErrorType::Z, {5, 2, 3}));
    std::vector<std::pair<int, int>> seen;
    win.forEachEvent([&seen](int t, int a) { seen.push_back({t, a}); });
    const std::vector<std::pair<int, int>> expected{
        {0, 2}, {0, 5}, {1, 3}};
    EXPECT_EQ(seen, expected);
}

TEST(SyndromeWindow, MajorityVote)
{
    SurfaceLattice lat(3);
    SyndromeWindow win(lat, ErrorType::Z, 3);
    win.recordRound(0, syndromeOf(lat, ErrorType::Z, {1, 2}));
    win.recordRound(1, syndromeOf(lat, ErrorType::Z, {1}));
    win.recordRound(2, syndromeOf(lat, ErrorType::Z, {1, 5}));
    Syndrome vote(lat, ErrorType::Z);
    win.majorityVote(vote);
    EXPECT_TRUE(vote.hot(1));  // 3 of 3
    EXPECT_FALSE(vote.hot(2)); // 1 of 3
    EXPECT_FALSE(vote.hot(5)); // 1 of 3
    EXPECT_EQ(vote.weight(), 1);
}

TEST(SyndromeWindow, MajorityVoteTiesVoteCold)
{
    SurfaceLattice lat(3);
    SyndromeWindow win(lat, ErrorType::Z, 2);
    win.recordRound(0, syndromeOf(lat, ErrorType::Z, {4}));
    win.recordRound(1, syndromeOf(lat, ErrorType::Z, {}));
    Syndrome vote(lat, ErrorType::Z);
    win.majorityVote(vote);
    EXPECT_EQ(vote.weight(), 0);
}

TEST(SyndromeWindowDeath, OutOfOrderRoundPanics)
{
    SurfaceLattice lat(3);
    SyndromeWindow win(lat, ErrorType::Z, 2);
    EXPECT_DEATH(win.recordRound(1, Syndrome(lat, ErrorType::Z)),
                 "in order");
}

} // namespace
} // namespace nisqpp
