/**
 * @file Unit tests of the seeded fault plan: purity (random-access
 * determinism), rate edge cases, corrupt-target bounds, the bounded
 * retransmit geometric, and the spec/policy validation panics.
 */

#include <gtest/gtest.h>

#include "faults/fault_plan.hh"

namespace nisqpp {
namespace faults {
namespace {

FaultSpec
allChannels(double rate)
{
    FaultSpec spec;
    spec.dropRate = rate;
    spec.corruptRate = rate;
    spec.duplicateRate = rate;
    spec.delayRate = rate;
    spec.stallRate = rate;
    spec.decodeFailRate = rate;
    return spec;
}

bool
sameFaults(const RoundFaults &a, const RoundFaults &b)
{
    return a.dropped == b.dropped && a.corruptBits == b.corruptBits &&
           a.corruptAncilla == b.corruptAncilla &&
           a.duplicated == b.duplicated &&
           a.delayCycles == b.delayCycles &&
           a.retransmitsNeeded == b.retransmitsNeeded &&
           a.stallFactor == b.stallFactor &&
           a.decodeFailed == b.decodeFailed;
}

TEST(FaultPlan, EventForIsPureAndRandomAccess)
{
    const FaultSpec spec = allChannels(0.3);
    FaultPlan plan(spec, 12);
    FaultPlan twin(spec, 12);
    // Same (spec, round) -> identical faults, in any evaluation order.
    for (std::uint64_t round : {907ULL, 0ULL, 31ULL, 907ULL}) {
        const RoundFaults a = plan.eventFor(round);
        const RoundFaults b = twin.eventFor(round);
        EXPECT_TRUE(sameFaults(a, b)) << "round " << round;
        EXPECT_TRUE(sameFaults(a, plan.eventFor(round)));
    }
}

TEST(FaultPlan, DifferentSeedsGiveDifferentStreams)
{
    FaultSpec a = allChannels(0.5);
    FaultSpec b = a;
    b.seed = a.seed + 1;
    FaultPlan planA(a, 12), planB(b, 12);
    int differing = 0;
    for (std::uint64_t k = 0; k < 64; ++k)
        if (!sameFaults(planA.eventFor(k), planB.eventFor(k)))
            ++differing;
    EXPECT_GT(differing, 0);
}

TEST(FaultPlan, ZeroRatesNeverFault)
{
    FaultPlan plan(FaultSpec{}, 12);
    for (std::uint64_t k = 0; k < 256; ++k) {
        const RoundFaults f = plan.eventFor(k);
        EXPECT_FALSE(f.anyFault()) << "round " << k;
        EXPECT_EQ(f.retransmitsNeeded, 0);
    }
    EXPECT_FALSE(FaultSpec{}.any());
}

TEST(FaultPlan, CertainDropAlwaysDropsAndCapsRetransmits)
{
    FaultSpec spec;
    spec.dropRate = 1.0;
    FaultPlan plan(spec, 12);
    for (std::uint64_t k = 0; k < 128; ++k) {
        const RoundFaults f = plan.eventFor(k);
        EXPECT_TRUE(f.dropped);
        // A dropped round never also reports corruption targets.
        EXPECT_EQ(f.corruptBits, 0);
        EXPECT_LE(f.retransmitsNeeded, kRetryCap);
    }
}

TEST(FaultPlan, CorruptTargetsStayInBounds)
{
    FaultSpec spec;
    spec.corruptRate = 1.0;
    const std::uint32_t ancilla = 7;
    FaultPlan plan(spec, ancilla);
    for (std::uint64_t k = 0; k < 256; ++k) {
        const RoundFaults f = plan.eventFor(k);
        ASSERT_GE(f.corruptBits, 1);
        ASSERT_LE(f.corruptBits, kMaxCorruptBits);
        for (int i = 0; i < f.corruptBits; ++i)
            EXPECT_LT(f.corruptAncilla[static_cast<std::size_t>(i)],
                      ancilla);
        EXPECT_TRUE(f.transportFault());
    }
}

TEST(FaultPlan, CleanTransportNeedsNoRetransmits)
{
    // Stall/delay/duplicate faults are not transport losses: the
    // retransmit geometric must stay untouched for them.
    FaultSpec spec;
    spec.delayRate = 1.0;
    spec.stallRate = 1.0;
    spec.duplicateRate = 1.0;
    FaultPlan plan(spec, 12);
    for (std::uint64_t k = 0; k < 64; ++k) {
        const RoundFaults f = plan.eventFor(k);
        EXPECT_FALSE(f.transportFault());
        EXPECT_EQ(f.retransmitsNeeded, 0);
        EXPECT_EQ(f.delayCycles, spec.delayCycles);
        EXPECT_DOUBLE_EQ(f.stallFactor, spec.stallFactor);
        EXPECT_TRUE(f.duplicated);
    }
}

TEST(FaultPlanDeath, ValidationPanicsOnBadSpecs)
{
    FaultSpec negative;
    negative.dropRate = -0.1;
    EXPECT_DEATH(FaultPlan(negative, 12), "dropRate");

    FaultSpec overUnity;
    overUnity.stallRate = 1.5;
    EXPECT_DEATH(FaultPlan(overUnity, 12), "stallRate");

    FaultSpec badShape;
    badShape.stallFactor = 0.5;
    EXPECT_DEATH(FaultPlan(badShape, 12), "stallFactor");

    FaultSpec badDelay;
    badDelay.delayCycles = 0;
    EXPECT_DEATH(FaultPlan(badDelay, 12), "delayCycles");

    EXPECT_DEATH(FaultPlan(FaultSpec{}, 0), "non-empty syndrome");
}

TEST(RecoveryPolicyDeath, ValidationPanicsOnNegativeCosts)
{
    RecoveryPolicy negativeBackoff;
    negativeBackoff.retransmitNs = -1.0;
    EXPECT_DEATH(negativeBackoff.validate(), "retransmitNs");

    RecoveryPolicy negativeDeadline;
    negativeDeadline.deadlineNs = -5.0;
    EXPECT_DEATH(negativeDeadline.validate(), "deadlineNs");

    RecoveryPolicy negativeMerge;
    negativeMerge.mergeNs = -0.5;
    EXPECT_DEATH(negativeMerge.validate(), "mergeNs");
}

TEST(RecoveryPolicy, ActiveReflectsEveryMechanism)
{
    EXPECT_FALSE(RecoveryPolicy{}.active());
    RecoveryPolicy p;
    p.parityRetransmit = true;
    EXPECT_TRUE(p.active());
    p = RecoveryPolicy{};
    p.carryForward = true;
    EXPECT_TRUE(p.active());
    p = RecoveryPolicy{};
    p.deadlineNs = 500.0;
    EXPECT_TRUE(p.active());
    p = RecoveryPolicy{};
    p.shedThreshold = 8;
    EXPECT_TRUE(p.active());
}

} // namespace
} // namespace faults
} // namespace nisqpp
