/** @file The report and trace writers must report stream failure: a
 * truncated JSON document (full disk, closed pipe) can never pass for
 * a successful run. */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/trace.hh"

namespace nisqpp::obs {
namespace {

MetricSet
someMetrics()
{
    MetricSet metrics;
    metrics.add("engine.trials", 100);
    metrics.add("timing.span.decode.count", 3);
    return metrics;
}

TEST(ReportWrite, HealthyStreamSucceeds)
{
    std::ostringstream os;
    EXPECT_TRUE(writeRunReport(os, RunReportConfig{"unit"},
                               someMetrics()));
    EXPECT_NE(os.str().find("\"engine.trials\":100"),
              std::string::npos);
}

TEST(ReportWrite, BadStreamReportsFailure)
{
    std::ostringstream os;
    os.setstate(std::ios::badbit);
    EXPECT_FALSE(writeRunReport(os, RunReportConfig{"unit"},
                                someMetrics()));
}

TEST(ReportWrite, UnopenableFileReportsFailure)
{
    std::ofstream os(testing::TempDir() +
                     "no_such_dir_xyzzy/report.json");
    EXPECT_FALSE(writeRunReport(os, RunReportConfig{"unit"},
                                someMetrics()));
}

TEST(TraceWrite, HealthyStreamSucceeds)
{
    std::ostringstream os;
    EXPECT_TRUE(writeChromeTrace(os));
    EXPECT_NE(os.str().find("traceEvents"), std::string::npos);
}

TEST(TraceWrite, BadStreamReportsFailure)
{
    std::ostringstream os;
    os.setstate(std::ios::badbit);
    EXPECT_FALSE(writeChromeTrace(os));
}

} // namespace
} // namespace nisqpp::obs
