/**
 * @file
 * TraceSpan/stage-aggregate contract: spans are inert while collection
 * is disabled, aggregate when enabled, render into the masked
 * `timing.span.*` namespace, and the chrome trace capture produces a
 * loadable JSON document.
 */

#include "obs/trace.hh"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hh"

namespace nisqpp::obs {
namespace {

/** Restores the global collection switches and aggregates on exit. */
class TraceEnv : public ::testing::Test
{
  protected:
    void SetUp() override { resetStageTimes(); }

    void TearDown() override
    {
        setTimingCollection(false);
        setTraceCapture(false);
        resetStageTimes();
    }
};

TEST_F(TraceEnv, DisabledSpanRecordsNothing)
{
    ASSERT_FALSE(timingCollection());
    ASSERT_FALSE(traceCapture());
    {
        TraceSpan span(Stage::Decode);
    }
    EXPECT_EQ(stageTiming(Stage::Decode).count, 0u);
    EXPECT_EQ(traceEventCount(), 0u);

    MetricSet out;
    stageTimingInto(out);
    EXPECT_TRUE(out.empty());
}

TEST_F(TraceEnv, EnabledSpanAggregates)
{
    setTimingCollection(true);
    {
        TraceSpan span(Stage::Decode);
    }
    {
        TraceSpan span(Stage::Decode);
    }
    const StageTiming timing = stageTiming(Stage::Decode);
    EXPECT_EQ(timing.count, 2u);
    EXPECT_GE(timing.totalNs, timing.maxNs);
    // Timing-only collection captures no chrome events.
    EXPECT_EQ(traceEventCount(), 0u);
    // Untouched stages stay empty.
    EXPECT_EQ(stageTiming(Stage::Sample).count, 0u);
}

TEST_F(TraceEnv, StageTimingRendersMaskedNames)
{
    setTimingCollection(true);
    {
        TraceSpan span(Stage::StreamDecode);
    }
    setTimingCollection(false);

    MetricSet out;
    stageTimingInto(out);
    EXPECT_EQ(out.value("timing.span.stream_decode.count"), 1u);
    std::ostringstream unmasked;
    out.writeScalarsJson(unmasked, false);
    EXPECT_EQ(unmasked.str(), "{}")
        << "span aggregates must live in the masked namespace";
}

TEST_F(TraceEnv, ChromeTraceIsValidDocument)
{
    setTraceCapture(true);
    {
        TraceSpan span(Stage::Shard);
        TraceSpan inner(Stage::Decode);
    }
    setTraceCapture(false);
    EXPECT_EQ(traceEventCount(), 2u);
    EXPECT_EQ(traceDroppedCount(), 0u);

    std::ostringstream os;
    writeChromeTrace(os);
    const std::string doc = os.str();
    EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(doc.find("\"name\":\"decode\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"shard\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);

    // Reset clears the buffer again.
    resetStageTimes();
    EXPECT_EQ(traceEventCount(), 0u);
}

TEST_F(TraceEnv, StageNamesAreStable)
{
    EXPECT_STREQ(stageName(Stage::Sample), "sample");
    EXPECT_STREQ(stageName(Stage::Extract), "extract");
    EXPECT_STREQ(stageName(Stage::Decode), "decode");
    EXPECT_STREQ(stageName(Stage::Classify), "classify");
    EXPECT_STREQ(stageName(Stage::Shard), "shard");
    EXPECT_STREQ(stageName(Stage::StreamProduce), "stream_produce");
    EXPECT_STREQ(stageName(Stage::StreamDecode), "stream_decode");
    EXPECT_STREQ(stageName(Stage::StreamCommit), "stream_commit");
}

} // namespace
} // namespace nisqpp::obs
