/**
 * @file
 * MetricSet contract: counter/gauge/histogram semantics, the masked
 * namespace split, order-invariant merges (the property the engine's
 * thread-count determinism rests on) and the JSON renderings the run
 * report embeds.
 */

#include "obs/metrics.hh"

#include <sstream>

#include <gtest/gtest.h>

namespace nisqpp::obs {
namespace {

TEST(MaskedName, TimingAndSchedNamespacesAreMasked)
{
    EXPECT_TRUE(maskedName("timing.span.decode.count"));
    EXPECT_TRUE(maskedName("sched.pool.steals"));
    EXPECT_FALSE(maskedName("engine.trials"));
    EXPECT_FALSE(maskedName("decoder.uf.growth_rounds"));
    EXPECT_FALSE(maskedName("stream.queue.spills"));
    // Only the namespace prefix masks, not a substring elsewhere.
    EXPECT_FALSE(maskedName("engine.timing.whatever"));
    EXPECT_FALSE(maskedName("timings.close_but_not"));
}

TEST(MetricSet, CountersAccumulate)
{
    MetricSet m;
    EXPECT_EQ(m.value("engine.trials"), 0u);
    m.add("engine.trials");
    m.add("engine.trials", 41);
    EXPECT_EQ(m.value("engine.trials"), 42u);
    EXPECT_FALSE(m.empty());
}

TEST(MetricSet, GaugesKeepTheMaximum)
{
    MetricSet m;
    m.maxGauge("stream.queue.max_fast_depth", 7);
    m.maxGauge("stream.queue.max_fast_depth", 3);
    EXPECT_EQ(m.value("stream.queue.max_fast_depth"), 7u);
    m.maxGauge("stream.queue.max_fast_depth", 19);
    EXPECT_EQ(m.value("stream.queue.max_fast_depth"), 19u);
}

TEST(MetricSet, HistogramRecordAndBulkMerge)
{
    MetricSet m;
    m.record("decoder.uf.growth_rounds", 2, 63);
    m.record("decoder.uf.growth_rounds", 2, 63);
    m.record("decoder.uf.growth_rounds", 5, 63);
    const MetricSet::HistogramEntry *entry =
        m.histogram("decoder.uf.growth_rounds");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->hist.total(), 3u);
    EXPECT_EQ(entry->hist.bin(2), 2u);
    EXPECT_EQ(entry->sum, 9u);

    Histogram bulk(63);
    bulk.add(5);
    MetricSet other;
    other.mergeHistogram("decoder.uf.growth_rounds", bulk, 5);
    m.merge(other);
    entry = m.histogram("decoder.uf.growth_rounds");
    EXPECT_EQ(entry->hist.bin(5), 2u);
    EXPECT_EQ(entry->sum, 14u);
}

TEST(MetricSet, MergeIsOrderInvariant)
{
    // Three shard-like sets folded in two different orders must agree
    // byte for byte: counters add, gauges max, histograms add bin-wise
    // (all commutative + associative).
    auto shard = [](std::uint64_t trials, std::uint64_t depth,
                    std::size_t rounds) {
        MetricSet m;
        m.add("engine.trials", trials);
        m.maxGauge("stream.backlog.max_rounds", depth);
        m.record("decoder.uf.growth_rounds", rounds, 63);
        return m;
    };
    MetricSet forward;
    forward.merge(shard(10, 3, 1));
    forward.merge(shard(20, 9, 4));
    forward.merge(shard(30, 6, 2));
    MetricSet backward;
    backward.merge(shard(30, 6, 2));
    backward.merge(shard(20, 9, 4));
    backward.merge(shard(10, 3, 1));

    std::ostringstream a, b;
    forward.writeScalarsJson(a, false);
    forward.writeHistogramsJson(a);
    backward.writeScalarsJson(b, false);
    backward.writeHistogramsJson(b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(forward.value("engine.trials"), 60u);
    EXPECT_EQ(forward.value("stream.backlog.max_rounds"), 9u);
}

TEST(MetricSet, ScalarsJsonSplitsByMask)
{
    MetricSet m;
    m.add("engine.trials", 5);
    m.add("timing.span.decode.count", 7);
    m.maxGauge("sched.pool.threads", 4);

    std::ostringstream plain;
    m.writeScalarsJson(plain, false);
    EXPECT_EQ(plain.str(), "{\"engine.trials\":5}");

    std::ostringstream masked;
    m.writeScalarsJson(masked, true);
    EXPECT_EQ(masked.str(), "{\"sched.pool.threads\":4,"
                            "\"timing.span.decode.count\":7}");
}

TEST(MetricSet, HistogramsJsonIsSparse)
{
    MetricSet m;
    m.record("decoder.uf.growth_rounds", 1, 7);
    m.record("decoder.uf.growth_rounds", 1, 7);
    m.record("decoder.uf.growth_rounds", 100, 7); // overflow bin
    std::ostringstream os;
    m.writeHistogramsJson(os);
    EXPECT_EQ(os.str(),
              "{\"decoder.uf.growth_rounds\":{\"count\":3,\"sum\":102,"
              "\"overflow\":1,\"bins\":{\"1\":2}}}");
}

} // namespace
} // namespace nisqpp::obs
