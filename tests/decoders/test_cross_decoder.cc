/**
 * @file Cross-decoder integration tests: relative accuracy ordering of
 * the software decoders on identical error streams.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "decoders/greedy_decoder.hh"
#include "decoders/lut_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "surface/error_model.hh"
#include "surface/logical.hh"

namespace nisqpp {
namespace {

/** Count failures of @p dec on a fixed seeded error stream. */
int
failures(Decoder &dec, const SurfaceLattice &lat, double p, int trials,
         std::uint64_t seed)
{
    DephasingModel model(p);
    Rng rng(seed);
    int fails = 0;
    for (int t = 0; t < trials; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Correction corr =
            dec.decode(extractSyndrome(st, ErrorType::Z));
        corr.applyTo(st, ErrorType::Z);
        fails += classifyResidual(st, ErrorType::Z).failed();
    }
    return fails;
}

TEST(CrossDecoder, LutMatchesOrBeatsMwpmAtD3)
{
    // The exhaustive LUT is a minimum-weight decoder; at d=3 it should
    // be statistically comparable to MWPM on the same stream.
    SurfaceLattice lat(3);
    LutDecoder lut(lat, ErrorType::Z);
    MwpmDecoder mwpm(lat, ErrorType::Z);
    const int f_lut = failures(lut, lat, 0.05, 3000, 77);
    const int f_mwpm = failures(mwpm, lat, 0.05, 3000, 77);
    EXPECT_LE(f_lut, f_mwpm + 30);
}

TEST(CrossDecoder, MwpmBeatsGreedyAtScale)
{
    SurfaceLattice lat(7);
    MwpmDecoder mwpm(lat, ErrorType::Z);
    GreedyDecoder greedy(lat, ErrorType::Z);
    const int f_mwpm = failures(mwpm, lat, 0.06, 2000, 99);
    const int f_greedy = failures(greedy, lat, 0.06, 2000, 99);
    EXPECT_LE(f_mwpm, f_greedy + 20);
}

TEST(CrossDecoder, EveryDecoderSuppressesAtLowRate)
{
    // At p well below threshold, every decoder must beat the physical
    // error rate at d=5 (PL < p x trials).
    SurfaceLattice lat(5);
    std::vector<std::unique_ptr<Decoder>> decoders;
    decoders.push_back(
        std::make_unique<MwpmDecoder>(lat, ErrorType::Z));
    decoders.push_back(
        std::make_unique<GreedyDecoder>(lat, ErrorType::Z));
    decoders.push_back(
        std::make_unique<UnionFindDecoder>(lat, ErrorType::Z));
    const double p = 0.01;
    const int trials = 2000;
    for (auto &dec : decoders) {
        const int f = failures(*dec, lat, p, trials, 1234);
        EXPECT_LT(f, static_cast<int>(p * trials)) << dec->name();
    }
}

} // namespace
} // namespace nisqpp
