/** @file Tests for the syndrome matching graph. */

#include <gtest/gtest.h>

#include "decoders/matching_graph.hh"

namespace nisqpp {
namespace {

TEST(MatchingGraph, NodesAreHotAncillas)
{
    SurfaceLattice lat(5);
    Syndrome syn(lat, ErrorType::Z);
    syn.set(2, true);
    syn.set(7, true);
    MatchingGraph graph(lat, ErrorType::Z, syn);
    ASSERT_EQ(graph.numNodes(), 2);
    EXPECT_EQ(graph.ancillaOf(0), 2);
    EXPECT_EQ(graph.ancillaOf(1), 7);
}

TEST(MatchingGraph, WeightsMatchLattice)
{
    SurfaceLattice lat(5);
    Syndrome syn(lat, ErrorType::Z);
    const int a = lat.ancillaIndex(ErrorType::Z, {0, 1});
    const int b = lat.ancillaIndex(ErrorType::Z, {4, 5});
    syn.set(a, true);
    syn.set(b, true);
    MatchingGraph graph(lat, ErrorType::Z, syn);
    EXPECT_EQ(graph.pairWeight(0, 1),
              lat.ancillaGraphDistance(ErrorType::Z, a, b));
    EXPECT_EQ(graph.boundaryWeight(0),
              lat.ancillaBoundaryDistance(ErrorType::Z, a));
}

TEST(MatchingGraph, TotalWeightOfMatching)
{
    SurfaceLattice lat(5);
    Syndrome syn(lat, ErrorType::Z);
    const int a = lat.ancillaIndex(ErrorType::Z, {0, 1});
    const int b = lat.ancillaIndex(ErrorType::Z, {0, 3});
    syn.set(a, true);
    syn.set(b, true);
    MatchingGraph graph(lat, ErrorType::Z, syn);
    const std::vector<MatchPair> pairs{{a, b, false}};
    EXPECT_EQ(graph.totalWeight(pairs), 1);
    const std::vector<MatchPair> boundary{{a, -1, true}, {b, -1, true}};
    EXPECT_EQ(graph.totalWeight(boundary), 1 + 2);
}

TEST(MatchingGraph, EmptySyndrome)
{
    SurfaceLattice lat(3);
    Syndrome syn(lat, ErrorType::Z);
    MatchingGraph graph(lat, ErrorType::Z, syn);
    EXPECT_EQ(graph.numNodes(), 0);
}

} // namespace
} // namespace nisqpp
