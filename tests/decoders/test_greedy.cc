/** @file Tests for the software greedy matching decoder (Section V-B). */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "decoders/greedy_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "surface/error_model.hh"
#include "surface/logical.hh"

namespace nisqpp {
namespace {

class GreedyParam : public ::testing::TestWithParam<int>
{
};

TEST_P(GreedyParam, CorrectsAllWeightOneErrors)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    GreedyDecoder dec(lat, ErrorType::Z);
    for (int q = 0; q < lat.numData(); ++q) {
        ErrorState st(lat);
        st.flip(ErrorType::Z, q);
        const Correction corr =
            dec.decode(extractSyndrome(st, ErrorType::Z));
        corr.applyTo(st, ErrorType::Z);
        EXPECT_FALSE(classifyResidual(st, ErrorType::Z).failed());
    }
}

TEST_P(GreedyParam, AlwaysClearsSyndrome)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    GreedyDecoder dec(lat, ErrorType::Z);
    DephasingModel model(0.1);
    Rng rng(0x6eed + d);
    for (int t = 0; t < 200; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Correction corr =
            dec.decode(extractSyndrome(st, ErrorType::Z));
        corr.applyTo(st, ErrorType::Z);
        ASSERT_EQ(extractSyndrome(st, ErrorType::Z).weight(), 0);
    }
}

TEST_P(GreedyParam, TwoApproximationOfMwpm)
{
    // Drake-Hougardy: greedy matching weight <= 2x optimal.
    const int d = GetParam();
    SurfaceLattice lat(d);
    GreedyDecoder greedy(lat, ErrorType::Z);
    MwpmDecoder mwpm(lat, ErrorType::Z);
    DephasingModel model(0.08);
    Rng rng(0x70 + d);
    for (int t = 0; t < 100; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Syndrome syn = extractSyndrome(st, ErrorType::Z);
        greedy.decode(syn);
        mwpm.decode(syn);
        const MatchingGraph graph(lat, ErrorType::Z, syn);
        const long wg = graph.totalWeight(greedy.lastMatching());
        const long wo = graph.totalWeight(mwpm.lastMatching());
        ASSERT_LE(wg, 2 * wo + 1) << "trial " << t;
        ASSERT_GE(wg, wo);
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, GreedyParam,
                         ::testing::Values(3, 5, 7));

TEST(Greedy, PicksClosestPairFirst)
{
    SurfaceLattice lat(7);
    GreedyDecoder dec(lat, ErrorType::Z);
    // Three collinear syndromes: close pair at distance 1, far one at
    // distance 2; greedy pairs the close two and sends the third to
    // its best alternative.
    Syndrome syn(lat, ErrorType::Z);
    syn.set(lat.ancillaIndex(ErrorType::Z, {6, 5}), true);
    syn.set(lat.ancillaIndex(ErrorType::Z, {6, 7}), true);
    syn.set(lat.ancillaIndex(ErrorType::Z, {6, 11}), true);
    dec.decode(syn);
    bool found_close_pair = false;
    for (const auto &p : dec.lastMatching()) {
        if (!p.toBoundary) {
            const Coord ca = lat.ancillaCoord(ErrorType::Z, p.a);
            const Coord cb = lat.ancillaCoord(ErrorType::Z, p.b);
            EXPECT_EQ(std::abs(ca.col - cb.col), 2);
            found_close_pair = true;
        }
    }
    EXPECT_TRUE(found_close_pair);
}

TEST(Greedy, DeterministicTieBreaking)
{
    SurfaceLattice lat(5);
    GreedyDecoder dec(lat, ErrorType::Z);
    Syndrome syn(lat, ErrorType::Z);
    syn.set(0, true);
    syn.set(1, true);
    syn.set(2, true);
    syn.set(3, true);
    const Correction c1 = dec.decode(syn);
    const Correction c2 = dec.decode(syn);
    EXPECT_EQ(c1.dataFlips, c2.dataFlips);
}

} // namespace
} // namespace nisqpp
