/**
 * @file
 * TieredDecoder contract: threshold 0 is exactly the mesh, an
 * always-escalate threshold is exactly the exact backend, the repair
 * diff is the XOR of the two answers, batched tiered decodes are
 * bit-identical to scalar ones (counters included), and tightened mesh
 * limits force the escalation + disagreement paths deterministically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "core/mesh_decoder.hh"
#include "decoders/tiered_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "decoders/workspace.hh"
#include "obs/metrics.hh"
#include "surface/error_model.hh"
#include "surface/logical.hh"

namespace nisqpp {
namespace {

std::unique_ptr<TieredDecoder>
makeTiered(const SurfaceLattice &lat, double threshold)
{
    return std::make_unique<TieredDecoder>(
        lat, ErrorType::Z,
        std::make_unique<MeshDecoder>(lat, ErrorType::Z),
        std::make_unique<UnionFindDecoder>(lat, ErrorType::Z),
        threshold);
}

/** Sample @p count syndromes of a fixed seeded dephasing stream. */
std::vector<Syndrome>
sampleSyndromes(const SurfaceLattice &lat, double p, int count,
                std::uint64_t seed)
{
    DephasingModel model(p);
    Rng rng(seed);
    std::vector<Syndrome> syndromes;
    syndromes.reserve(count);
    for (int t = 0; t < count; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        syndromes.push_back(extractSyndrome(st, ErrorType::Z));
    }
    return syndromes;
}

std::vector<int>
sortedFlips(const Correction &c)
{
    std::vector<int> v = c.dataFlips;
    std::sort(v.begin(), v.end());
    return v;
}

/** Flatten a MetricSet's scalars for whole-set equality checks. */
std::map<std::string, std::uint64_t>
scalarMap(const obs::MetricSet &m)
{
    std::map<std::string, std::uint64_t> out;
    m.forEachScalar([&out](const std::string &name, bool,
                           std::uint64_t value) { out[name] = value; });
    return out;
}

TEST(TieredDecoder, ZeroThresholdIsExactlyTheMesh)
{
    SurfaceLattice lat(5);
    auto tiered = makeTiered(lat, 0.0);
    MeshDecoder mesh(lat, ErrorType::Z);
    TrialWorkspace ws;
    const auto syndromes = sampleSyndromes(lat, 0.08, 100, 0x7172edULL);
    for (const Syndrome &syn : syndromes) {
        tiered->decode(syn, ws);
        const std::vector<int> got = sortedFlips(ws.correction);
        EXPECT_EQ(got, sortedFlips(mesh.decode(syn)));
        ASSERT_NE(tiered->tieredStats(), nullptr);
        EXPECT_FALSE(tiered->tieredStats()->escalated);
    }
    obs::MetricSet m;
    tiered->exportMetrics(m);
    EXPECT_EQ(m.value("decoder.tiered.decodes"), 100u);
    EXPECT_EQ(m.value("decoder.tiered.escalations"), 0u);
    EXPECT_EQ(m.value("decoder.tiered.repairs"), 0u);
}

TEST(TieredDecoder, AlwaysEscalateIsExactlyTheBackend)
{
    SurfaceLattice lat(5);
    auto tiered = makeTiered(lat, 2.0); // > 1: every decode escalates
    UnionFindDecoder uf(lat, ErrorType::Z);
    TrialWorkspace ws, ufWs;
    const auto syndromes = sampleSyndromes(lat, 0.08, 100, 0x7172edULL);
    for (const Syndrome &syn : syndromes) {
        tiered->decode(syn, ws);
        uf.decode(syn, ufWs);
        EXPECT_EQ(sortedFlips(ws.correction), sortedFlips(ufWs.correction));
        ASSERT_NE(tiered->tieredStats(), nullptr);
        EXPECT_TRUE(tiered->tieredStats()->escalated);
    }
    obs::MetricSet m;
    tiered->exportMetrics(m);
    EXPECT_EQ(m.value("decoder.tiered.escalations"), 100u);
    // Both tiers worked and exported their own counters.
    EXPECT_EQ(m.value("decoder.mesh.decodes"), 100u);
    EXPECT_EQ(m.value("decoder.uf.decodes"), 100u);
}

TEST(TieredDecoder, RepairIsTheXorOfProvisionalAndExact)
{
    SurfaceLattice lat(5);
    auto tiered = makeTiered(lat, 2.0);
    MeshDecoder mesh(lat, ErrorType::Z);
    TrialWorkspace ws;
    const auto syndromes = sampleSyndromes(lat, 0.10, 200, 0x9e1aULL);
    int repaired = 0;
    for (const Syndrome &syn : syndromes) {
        tiered->decode(syn, ws);
        const TieredDecodeStats *ts = tiered->tieredStats();
        ASSERT_NE(ts, nullptr);
        // provisional XOR repair == exact: apply all three to a clean
        // state; the result must be error-free under XOR semantics.
        ErrorState scratch(lat);
        mesh.decode(syn).applyTo(scratch, ErrorType::Z); // provisional
        for (int d : ts->repairFlips)
            scratch.flip(ErrorType::Z, d);
        ws.correction.applyTo(scratch, ErrorType::Z); // exact
        bool any = false;
        for (int d = 0; d < lat.numData(); ++d)
            any = any || scratch.has(ErrorType::Z, d);
        EXPECT_FALSE(any);
        repaired += ts->repaired;
        EXPECT_EQ(ts->repaired, !ts->repairFlips.empty());
    }
    // The stream is hot enough that mesh and union-find disagree
    // somewhere; otherwise this test exercises nothing.
    EXPECT_GT(repaired, 0);
}

TEST(TieredDecoder, BatchMatchesScalarBitForBit)
{
    SurfaceLattice lat(5);
    auto batched = makeTiered(lat, 0.7);
    auto scalar = makeTiered(lat, 0.7);
    const auto syndromes = sampleSyndromes(lat, 0.08, 160, 0xba7cULL);
    std::vector<const Syndrome *> ptrs;
    for (const Syndrome &syn : syndromes)
        ptrs.push_back(&syn);

    TrialWorkspace bws, sws;
    batched->decodeBatch(ptrs.data(), ptrs.size(), bws);
    for (std::size_t i = 0; i < ptrs.size(); ++i) {
        scalar->decode(*ptrs[i], sws);
        EXPECT_EQ(sortedFlips(bws.laneCorrections[i]),
                  sortedFlips(sws.correction))
            << "lane " << i;
        ASSERT_NE(batched->tieredStats(i), nullptr);
        EXPECT_EQ(batched->tieredStats(i)->escalated,
                  scalar->tieredStats()->escalated);
        EXPECT_EQ(batched->tieredStats(i)->repairFlips,
                  scalar->tieredStats()->repairFlips);
        EXPECT_DOUBLE_EQ(batched->tieredStats(i)->confidence,
                         scalar->tieredStats()->confidence);
    }
    obs::MetricSet bm, sm;
    batched->exportMetrics(bm);
    scalar->exportMetrics(sm);
    EXPECT_EQ(scalarMap(bm), scalarMap(sm));
    EXPECT_GT(bm.value("decoder.tiered.escalations"), 0u);
}

TEST(TieredDecoder, TightMeshLimitsForceEscalationAndRepair)
{
    SurfaceLattice lat(5);
    auto tiered = makeTiered(lat, 0.5);
    // Starve the mesh: 2 cycles can't resolve anything non-trivial, so
    // every non-empty syndrome times out, scores zero confidence, and
    // escalates; the mesh's (empty or partial) answer then disagrees
    // with union-find's, forcing the repair path.
    tiered->mesh().setLimitsForTest(2, 1);
    UnionFindDecoder uf(lat, ErrorType::Z);
    TrialWorkspace ws, ufWs;
    const auto syndromes = sampleSyndromes(lat, 0.08, 100, 0x5ca1eULL);
    for (const Syndrome &syn : syndromes) {
        tiered->decode(syn, ws);
        uf.decode(syn, ufWs);
        EXPECT_EQ(sortedFlips(ws.correction),
                  sortedFlips(ufWs.correction));
        if (syn.weight() > 0) {
            EXPECT_TRUE(tiered->tieredStats()->escalated);
            EXPECT_EQ(tiered->tieredStats()->confidence, 0.0);
        }
    }
    obs::MetricSet m;
    tiered->exportMetrics(m);
    EXPECT_GT(m.value("decoder.tiered.escalations"), 0u);
    EXPECT_GT(m.value("decoder.tiered.repairs"), 0u);
    EXPECT_GT(m.value("decoder.mesh.cycles_capped"), 0u);
}

TEST(TieredDecoder, WindowEscalationUsesSpacetimeBackend)
{
    SurfaceLattice lat(3);
    auto tiered = makeTiered(lat, 2.0);
    EXPECT_TRUE(tiered->windowAware());
    UnionFindDecoder uf(lat, ErrorType::Z);

    // One data error at round 0 plus a flipped readout at round 1:
    // majority voting and spacetime matching both see the data error,
    // but only the escalated answer is committed.
    const int w = 3;
    SyndromeWindow win(lat, ErrorType::Z, w + 1);
    ErrorState state(lat);
    Syndrome syn(lat, ErrorType::Z);
    state.flip(ErrorType::Z, 0);
    for (int t = 0; t <= w; ++t) {
        extractSyndromeInto(state, ErrorType::Z, syn);
        if (t == 1 && lat.numAncilla(ErrorType::Z) > 1)
            syn.flip(1);
        win.recordRound(t, syn);
    }

    TrialWorkspace ws, ufWs;
    tiered->decodeWindow(win, ws);
    uf.decodeWindow(win, ufWs);
    EXPECT_EQ(sortedFlips(ws.correction), sortedFlips(ufWs.correction));
    EXPECT_TRUE(tiered->tieredStats()->escalated);

    obs::MetricSet m;
    tiered->exportMetrics(m);
    EXPECT_EQ(m.value("decoder.tiered.window_decodes"), 1u);
}

TEST(TieredDecoder, NameSpellsOutBothTiersAndThreshold)
{
    SurfaceLattice lat(3);
    const std::string name = makeTiered(lat, 0.6)->name();
    EXPECT_NE(name.find("tiered["), std::string::npos);
    EXPECT_NE(name.find("->"), std::string::npos);
    EXPECT_NE(name.find("@0.60"), std::string::npos);
}

} // namespace
} // namespace nisqpp
