/** @file Tests for the Union-Find decoder. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "decoders/union_find_decoder.hh"
#include "surface/error_model.hh"
#include "surface/logical.hh"

namespace nisqpp {
namespace {

class UnionFindParam : public ::testing::TestWithParam<int>
{
};

TEST_P(UnionFindParam, CorrectsAllWeightOneErrors)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    for (ErrorType type : {ErrorType::Z, ErrorType::X}) {
        UnionFindDecoder dec(lat, type);
        for (int q = 0; q < lat.numData(); ++q) {
            ErrorState st(lat);
            st.flip(type, q);
            const Correction corr =
                dec.decode(extractSyndrome(st, type));
            corr.applyTo(st, type);
            EXPECT_FALSE(classifyResidual(st, type).failed())
                << "d=" << d << " q=" << q;
        }
    }
}

TEST_P(UnionFindParam, AlwaysClearsSyndrome)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    UnionFindDecoder dec(lat, ErrorType::Z);
    DephasingModel model(0.1);
    Rng rng(0x0f1d + d);
    for (int t = 0; t < 300; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Correction corr =
            dec.decode(extractSyndrome(st, ErrorType::Z));
        corr.applyTo(st, ErrorType::Z);
        ASSERT_EQ(extractSyndrome(st, ErrorType::Z).weight(), 0)
            << "trial " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, UnionFindParam,
                         ::testing::Values(3, 5, 7, 9));

TEST(UnionFind, EmptySyndromeNoWork)
{
    SurfaceLattice lat(5);
    UnionFindDecoder dec(lat, ErrorType::Z);
    Syndrome syn(lat, ErrorType::Z);
    EXPECT_TRUE(dec.decode(syn).dataFlips.empty());
    EXPECT_EQ(dec.lastGrowthRounds(), 0);
}

TEST(UnionFind, AdjacentPairResolvedLocally)
{
    SurfaceLattice lat(5);
    UnionFindDecoder dec(lat, ErrorType::Z);
    ErrorState st(lat);
    st.flip(ErrorType::Z, lat.dataIndex({2, 4}));
    const Correction corr = dec.decode(extractSyndrome(st, ErrorType::Z));
    ASSERT_EQ(corr.dataFlips.size(), 1u);
    EXPECT_EQ(corr.dataFlips[0], lat.dataIndex({2, 4}));
}

TEST(UnionFind, GrowthConverges)
{
    SurfaceLattice lat(9);
    UnionFindDecoder dec(lat, ErrorType::Z);
    DephasingModel model(0.15);
    Rng rng(0xff);
    for (int t = 0; t < 50; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        dec.decode(extractSyndrome(st, ErrorType::Z));
        ASSERT_LE(dec.lastGrowthRounds(), 4 * lat.gridSize() + 8);
    }
}

TEST(UnionFind, BetterThanNothingAtModerateNoise)
{
    // Logical error rate with UF at d=5, p=3% must beat the undecoded
    // baseline by a wide margin (sanity of the full pipeline).
    SurfaceLattice lat(5);
    UnionFindDecoder dec(lat, ErrorType::Z);
    DephasingModel model(0.03);
    Rng rng(0x11);
    int fails = 0;
    const int trials = 1000;
    for (int t = 0; t < trials; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Correction corr =
            dec.decode(extractSyndrome(st, ErrorType::Z));
        corr.applyTo(st, ErrorType::Z);
        fails += classifyResidual(st, ErrorType::Z).failed();
    }
    EXPECT_LT(fails, trials / 10);
}

} // namespace
} // namespace nisqpp
