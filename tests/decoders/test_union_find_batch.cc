/**
 * @file
 * Lane-packed batch union-find pinned bit-exact against the scalar
 * reference: for every distance the experiments sweep, every noise
 * channel (including erasure marks) and every SIMD dispatch width,
 * decodeBatch() / decodeWindowBatch() must emit corrections AND
 * decoder.uf.* telemetry byte-identical to one-at-a-time scalar
 * decodes of the same syndromes — across chunk boundaries, weight-0
 * lanes and repeated batches through one engine.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"
#include "decoders/union_find_decoder.hh"
#include "decoders/workspace.hh"
#include "noise/channels.hh"
#include "obs/metrics.hh"
#include "surface/error_state.hh"
#include "surface/logical.hh"
#include "surface/syndrome_window.hh"

namespace nisqpp {
namespace {

/** Every dispatch width the runtime can latch. */
const simd::Width kWidths[] = {simd::Width::Scalar, simd::Width::V256,
                               simd::Width::V512};

/** RAII restore of the process-wide dispatch width. */
class WidthGuard
{
  public:
    explicit WidthGuard(simd::Width w) : before_(simd::activeWidth())
    {
        simd::setActiveWidth(w);
    }
    ~WidthGuard() { simd::setActiveWidth(before_); }

  private:
    simd::Width before_;
};

/** One composable channel per family the noise subsystem offers. */
std::vector<std::unique_ptr<NoiseChannel>>
allChannels(double p)
{
    std::vector<std::unique_ptr<NoiseChannel>> out;
    out.push_back(std::make_unique<DepolarizingChannel>(p));
    out.push_back(std::make_unique<DephasingChannel>(p));
    out.push_back(std::make_unique<BiasedEtaChannel>(p, 3.0));
    out.push_back(std::make_unique<ErasureChannel>(p));
    return out;
}

/**
 * Sample @p count syndromes of channel-generated error states. The
 * first and one middle lane are forced to weight 0 so every batch
 * carries trivially finished lanes next to active ones.
 */
std::vector<Syndrome>
sampleSyndromes(const SurfaceLattice &lat, const NoiseChannel &channel,
                ErrorType type, int count, Rng &rng)
{
    std::vector<Syndrome> out;
    ErrorState state(lat);
    for (int i = 0; i < count; ++i) {
        Syndrome syn(lat, type);
        if (i != 0 && i != count / 2) {
            state.clear();
            channel.sampleInto(rng, state);
            extractSyndromeInto(state, type, syn);
        }
        out.push_back(std::move(syn));
    }
    return out;
}

/** Flatten a MetricSet for whole-set equality checks. */
std::map<std::string, std::vector<std::uint64_t>>
metricMap(const UnionFindDecoder &dec)
{
    obs::MetricSet m;
    dec.exportMetrics(m);
    std::map<std::string, std::vector<std::uint64_t>> out;
    m.forEachScalar([&out](const std::string &name, bool,
                           std::uint64_t value) {
        out["scalar." + name] = {value};
    });
    m.forEachHistogram([&out](const std::string &name,
                              const obs::MetricSet::HistogramEntry &e) {
        std::vector<std::uint64_t> v = {e.sum, e.hist.overflow()};
        for (std::size_t i = 0; i < e.hist.numBins(); ++i)
            v.push_back(e.hist.bin(i));
        out["hist." + name] = v;
    });
    return out;
}

/**
 * Decode @p syns one-by-one through @p scalar and batched through
 * @p batched, asserting bit-identical corrections and counters.
 */
void
expectBatchMatchesScalar(UnionFindDecoder &scalar,
                         UnionFindDecoder &batched,
                         const std::vector<Syndrome> &syns,
                         const std::string &label)
{
    TrialWorkspace sws;
    std::vector<Correction> expected;
    for (const Syndrome &syn : syns) {
        scalar.decode(syn, sws);
        expected.push_back(sws.correction);
    }

    std::vector<const Syndrome *> ptrs;
    for (const Syndrome &syn : syns)
        ptrs.push_back(&syn);
    TrialWorkspace ws;
    batched.decodeBatch(ptrs.data(), ptrs.size(), ws);

    ASSERT_GE(ws.laneCorrections.size(), syns.size()) << label;
    for (std::size_t i = 0; i < syns.size(); ++i)
        EXPECT_EQ(ws.laneCorrections[i].dataFlips,
                  expected[i].dataFlips)
            << label << ": correction of lane " << i;
    EXPECT_EQ(metricMap(batched), metricMap(scalar)) << label;
}

TEST(UnionFindBatch, MatchesScalarAcrossDistancesAndChannels)
{
    Rng rng(0xbeefcafeULL);
    for (simd::Width w : kWidths) {
        WidthGuard guard(w);
        for (int d : {3, 5, 7, 9}) {
            SurfaceLattice lat(d);
            for (const auto &channel : allChannels(0.08)) {
                for (ErrorType type : {ErrorType::Z, ErrorType::X}) {
                    if (type == ErrorType::X && !channel->producesX())
                        continue;
                    UnionFindDecoder scalar(lat, type);
                    UnionFindDecoder batched(lat, type);
                    EXPECT_EQ(batched.batchWidth(), w);
                    // 2.5 chunks of the widest engine so every width
                    // exercises chunk boundaries and a ragged tail.
                    const auto syns = sampleSyndromes(
                        lat, *channel, type, 160, rng);
                    expectBatchMatchesScalar(
                        scalar, batched, syns,
                        "d=" + std::to_string(d) + " " +
                            channel->name() + " " +
                            simd::widthName(w) +
                            (type == ErrorType::Z ? " Z" : " X"));
                }
            }
        }
    }
}

TEST(UnionFindBatch, HeavySyndromesAndRepeatedBatches)
{
    // Back-to-back batches of varying sizes (including size 1 and a
    // sub-word tail) through one decoder: later batches must not see
    // earlier lanes' cluster state, and counters accumulate across
    // batches exactly as a scalar decoder's do.
    Rng rng(0x0ddba11ULL);
    for (simd::Width w : kWidths) {
        WidthGuard guard(w);
        SurfaceLattice lat(9);
        UnionFindDecoder scalar(lat, ErrorType::Z);
        UnionFindDecoder batched(lat, ErrorType::Z);
        ErrorState state(lat);
        for (int size : {67, 1, 8, 3, 129, 5}) {
            std::vector<Syndrome> syns;
            for (int i = 0; i < size; ++i) {
                Syndrome syn(lat, ErrorType::Z);
                // Heavy (p up to 30%) rounds grow clusters that
                // merge, touch the boundary and peel long chains.
                state.clear();
                DephasingChannel(0.02 + 0.28 * rng.uniform())
                    .sampleInto(rng, state);
                extractSyndromeInto(state, ErrorType::Z, syn);
                syns.push_back(std::move(syn));
            }
            expectBatchMatchesScalar(scalar, batched, syns,
                                     simd::widthName(w) +
                                         std::string(" batch size ") +
                                         std::to_string(size));
        }
    }
}

TEST(UnionFindBatch, ErasureMarkedLatticeStillMatches)
{
    // The erasure channel flags marked qubits while injecting random
    // Paulis; the decoder consumes only the syndrome, but the marked
    // error states exercise Y components (X and Z simultaneously).
    Rng rng(0x5eedULL);
    for (simd::Width w : kWidths) {
        WidthGuard guard(w);
        for (int d : {5, 9}) {
            SurfaceLattice lat(d);
            ErasureChannel channel(0.12);
            for (ErrorType type : {ErrorType::Z, ErrorType::X}) {
                UnionFindDecoder scalar(lat, type);
                UnionFindDecoder batched(lat, type);
                const auto syns =
                    sampleSyndromes(lat, channel, type, 40, rng);
                EXPECT_GT(channel.marks().popcount(), 0);
                expectBatchMatchesScalar(
                    scalar, batched, syns,
                    "erasure d=" + std::to_string(d));
            }
            channel.clearMarks();
        }
    }
}

/**
 * Record a @p w noisy-round window of channel noise plus measurement
 * flips into @p win (round w is the perfect commit round).
 */
void
buildNoisyWindow(const SurfaceLattice &lat, int w,
                 const NoiseChannel &channel,
                 const MeasurementFlipChannel &meas, Rng &rng,
                 SyndromeWindow &win)
{
    win.reset();
    ErrorState state(lat);
    Syndrome syn(lat, ErrorType::Z);
    for (int t = 0; t < w; ++t) {
        channel.sampleInto(rng, state);
        extractSyndromeInto(state, ErrorType::Z, syn);
        meas.corrupt(rng, syn);
        win.recordRound(t, syn);
    }
    extractSyndromeInto(state, ErrorType::Z, syn);
    win.recordRound(w, syn);
}

TEST(UnionFindBatch, WindowedSpacetimeMatchesScalar)
{
    // Spacetime windows with faulty measurement: decodeWindowBatch
    // must match decodeWindow lane for lane, including windows whose
    // detection-event sets are empty.
    Rng rng(0x77a11ULL);
    const MeasurementFlipChannel meas(0.03);
    for (simd::Width w : kWidths) {
        WidthGuard guard(w);
        for (int d : {3, 5, 7}) {
            SurfaceLattice lat(d);
            const DephasingChannel channel(0.04);
            UnionFindDecoder scalar(lat, ErrorType::Z);
            UnionFindDecoder batched(lat, ErrorType::Z);

            std::vector<std::unique_ptr<SyndromeWindow>> windows;
            for (int i = 0; i < 3 * d + 2; ++i) {
                auto win = std::make_unique<SyndromeWindow>(
                    lat, ErrorType::Z, d + 1);
                if (i == 0 || i == d)
                    win->reset(); // empty window: zero events
                else
                    buildNoisyWindow(lat, d, channel, meas, rng, *win);
                windows.push_back(std::move(win));
            }

            TrialWorkspace sws;
            std::vector<Correction> expected;
            for (const auto &win : windows) {
                scalar.decodeWindow(*win, sws);
                expected.push_back(sws.correction);
            }

            std::vector<const SyndromeWindow *> ptrs;
            for (const auto &win : windows)
                ptrs.push_back(win.get());
            TrialWorkspace ws;
            batched.decodeWindowBatch(ptrs.data(), ptrs.size(), ws);

            const std::string label =
                "window d=" + std::to_string(d) + " " +
                simd::widthName(w);
            ASSERT_GE(ws.laneCorrections.size(), windows.size())
                << label;
            for (std::size_t i = 0; i < windows.size(); ++i)
                EXPECT_EQ(ws.laneCorrections[i].dataFlips,
                          expected[i].dataFlips)
                    << label << ": lane " << i;
            EXPECT_EQ(metricMap(batched), metricMap(scalar)) << label;
        }
    }
}

TEST(UnionFindBatch, MixedRoundWindowsFallBackConsistently)
{
    // Windows of unequal round counts route through the base-class
    // scalar loop — still bit-identical to one-at-a-time decodes.
    Rng rng(0x2ea7ULL);
    SurfaceLattice lat(5);
    const DephasingChannel channel(0.05);
    const MeasurementFlipChannel meas(0.02);
    UnionFindDecoder scalar(lat, ErrorType::Z);
    UnionFindDecoder batched(lat, ErrorType::Z);

    std::vector<std::unique_ptr<SyndromeWindow>> windows;
    for (int rounds : {3, 6, 3, 4}) {
        auto win = std::make_unique<SyndromeWindow>(lat, ErrorType::Z,
                                                    rounds + 1);
        buildNoisyWindow(lat, rounds, channel, meas, rng, *win);
        windows.push_back(std::move(win));
    }

    TrialWorkspace sws;
    std::vector<Correction> expected;
    for (const auto &win : windows) {
        scalar.decodeWindow(*win, sws);
        expected.push_back(sws.correction);
    }
    std::vector<const SyndromeWindow *> ptrs;
    for (const auto &win : windows)
        ptrs.push_back(win.get());
    TrialWorkspace ws;
    batched.decodeWindowBatch(ptrs.data(), ptrs.size(), ws);
    for (std::size_t i = 0; i < windows.size(); ++i)
        EXPECT_EQ(ws.laneCorrections[i].dataFlips,
                  expected[i].dataFlips)
            << "mixed-round lane " << i;
    EXPECT_EQ(metricMap(batched), metricMap(scalar));
}

TEST(UnionFindBatch, CorrectionClearsSyndromeHolds)
{
    // The annihilation trait the batched streaming consumer relies
    // on: applying the committed correction leaves a clear syndrome.
    Rng rng(0xc1ea2ULL);
    SurfaceLattice lat(9);
    UnionFindDecoder dec(lat, ErrorType::Z);
    ASSERT_TRUE(dec.correctionClearsSyndrome());
    TrialWorkspace ws;
    ErrorState state(lat);
    Syndrome syn(lat, ErrorType::Z);
    for (int trial = 0; trial < 200; ++trial) {
        state.clear();
        DephasingChannel(0.01 + 0.2 * rng.uniform())
            .sampleInto(rng, state);
        extractSyndromeInto(state, ErrorType::Z, syn);
        dec.decode(syn, ws);
        ws.correction.applyTo(state, ErrorType::Z);
        extractSyndromeInto(state, ErrorType::Z, syn);
        EXPECT_EQ(syn.weight(), 0) << "trial " << trial;
    }
}

} // namespace
} // namespace nisqpp
