/** @file Spacetime windowed decoding: MWPM/union-find over detection
 * events, majority-vote fallback, and the time-like MatchingGraph. */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "decoders/greedy_decoder.hh"
#include "decoders/matching_graph.hh"
#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "decoders/workspace.hh"
#include "surface/logical.hh"
#include "surface/syndrome_window.hh"

namespace nisqpp {
namespace {

/**
 * Build the window of a static error history: errorsAt[t] lists data
 * qubits whose Z error appears (newly) at round t; flipsAt[t] lists
 * ancillas whose round-t readout is flipped. Rounds 0..w-1 are noisy,
 * round w is the perfect commit round. Returns the final error state
 * through @p state.
 */
void
buildWindow(const SurfaceLattice &lat, int w,
            const std::vector<std::vector<int>> &errorsAt,
            const std::vector<std::vector<int>> &flipsAt,
            SyndromeWindow &win, ErrorState &state)
{
    state.clear();
    win.reset();
    Syndrome syn(lat, ErrorType::Z);
    for (int t = 0; t < w; ++t) {
        if (t < static_cast<int>(errorsAt.size()))
            for (int d : errorsAt[t])
                state.flip(ErrorType::Z, d);
        extractSyndromeInto(state, ErrorType::Z, syn);
        if (t < static_cast<int>(flipsAt.size()))
            for (int a : flipsAt[t])
                syn.flip(a);
        win.recordRound(t, syn);
    }
    extractSyndromeInto(state, ErrorType::Z, syn);
    win.recordRound(w, syn);
}

/** Apply ws.correction and classify the residual. */
FailureReport
commitAndClassify(ErrorState &state, TrialWorkspace &ws)
{
    ws.correction.applyTo(state, ErrorType::Z);
    return classifyResidual(state, ErrorType::Z);
}

class WindowDecoding
    : public ::testing::TestWithParam<const char *>
{
  public:
    static std::unique_ptr<Decoder>
    make(const SurfaceLattice &lat)
    {
        const std::string name = GetParam();
        if (name == "mwpm")
            return std::make_unique<MwpmDecoder>(lat, ErrorType::Z);
        return std::make_unique<UnionFindDecoder>(lat, ErrorType::Z);
    }
};

TEST_P(WindowDecoding, IsWindowAware)
{
    SurfaceLattice lat(3);
    EXPECT_TRUE(make(lat)->windowAware());
}

TEST_P(WindowDecoding, CorrectsSingleDataError)
{
    for (int d : {3, 5}) {
        SurfaceLattice lat(d);
        auto decoder = make(lat);
        TrialWorkspace ws;
        const int w = d;
        SyndromeWindow win(lat, ErrorType::Z, w + 1);
        ErrorState state(lat);
        for (int q = 0; q < lat.numData(); ++q) {
            buildWindow(lat, w, {{q}}, {}, win, state);
            decoder->decodeWindow(win, ws);
            const FailureReport report = commitAndClassify(state, ws);
            EXPECT_FALSE(report.failed())
                << GetParam() << " d=" << d << " data qubit " << q;
        }
    }
}

TEST_P(WindowDecoding, MeasurementFlipYieldsNoDataFlips)
{
    // A lone readout flip must be explained time-like: the committed
    // correction touches no data qubits.
    SurfaceLattice lat(5);
    auto decoder = make(lat);
    TrialWorkspace ws;
    const int w = 5;
    SyndromeWindow win(lat, ErrorType::Z, w + 1);
    ErrorState state(lat);
    for (int a = 0; a < lat.numAncilla(ErrorType::Z); ++a) {
        buildWindow(lat, w, {}, {{}, {a}}, win, state);
        decoder->decodeWindow(win, ws);
        EXPECT_TRUE(ws.correction.dataFlips.empty())
            << GetParam() << " flipped ancilla " << a;
        const FailureReport report = commitAndClassify(state, ws);
        EXPECT_FALSE(report.failed());
    }
}

TEST_P(WindowDecoding, CorrectsErrorPlusUnrelatedFlip)
{
    SurfaceLattice lat(5);
    auto decoder = make(lat);
    TrialWorkspace ws;
    const int w = 5;
    SyndromeWindow win(lat, ErrorType::Z, w + 1);
    ErrorState state(lat);
    // A data error at round 1 and a far-away readout flip at round 3.
    buildWindow(lat, w, {{}, {7}}, {{}, {}, {}, {17}}, win, state);
    decoder->decodeWindow(win, ws);
    const FailureReport report = commitAndClassify(state, ws);
    EXPECT_FALSE(report.failed()) << GetParam();
}

TEST_P(WindowDecoding, LateErrorNearCommitRoundIsCorrected)
{
    SurfaceLattice lat(3);
    auto decoder = make(lat);
    TrialWorkspace ws;
    const int w = 3;
    SyndromeWindow win(lat, ErrorType::Z, w + 1);
    ErrorState state(lat);
    // Error lands on the last noisy round: only the commit round
    // confirms it.
    buildWindow(lat, w, {{}, {}, {2}}, {}, win, state);
    decoder->decodeWindow(win, ws);
    const FailureReport report = commitAndClassify(state, ws);
    EXPECT_FALSE(report.failed()) << GetParam();
}

TEST_P(WindowDecoding, EmptyWindowYieldsEmptyCorrection)
{
    SurfaceLattice lat(3);
    auto decoder = make(lat);
    TrialWorkspace ws;
    SyndromeWindow win(lat, ErrorType::Z, 4);
    ErrorState state(lat);
    buildWindow(lat, 3, {}, {}, win, state);
    decoder->decodeWindow(win, ws);
    EXPECT_TRUE(ws.correction.dataFlips.empty());
}

INSTANTIATE_TEST_SUITE_P(Decoders, WindowDecoding,
                         ::testing::Values("mwpm", "union_find"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(MatchingGraphWindow, TimeLikeWeights)
{
    SurfaceLattice lat(3);
    SyndromeWindow win(lat, ErrorType::Z, 3);
    Syndrome none(lat, ErrorType::Z);
    Syndrome hot(lat, ErrorType::Z);
    hot.set(1, true);
    win.recordRound(0, none);
    win.recordRound(1, hot); // events: (1, 1) and (2, 1)
    win.recordRound(2, none);

    MatchingGraph graph;
    graph.buildWindow(lat, ErrorType::Z, win);
    ASSERT_EQ(graph.numNodes(), 2);
    EXPECT_EQ(graph.ancillaOf(0), 1);
    EXPECT_EQ(graph.ancillaOf(1), 1);
    EXPECT_EQ(graph.nodeTime(0), 1);
    EXPECT_EQ(graph.nodeTime(1), 2);
    // Same ancilla, one round apart: weight 1, purely time-like.
    EXPECT_EQ(graph.pairWeight(0, 1), 1);
    // Boundary legs stay spatial.
    EXPECT_EQ(graph.boundaryWeight(0),
              lat.ancillaBoundaryDistance(ErrorType::Z, 1));
}

TEST(MatchingGraphWindow, SpaceOnlyBuildReportsNoTime)
{
    SurfaceLattice lat(3);
    Syndrome syn(lat, ErrorType::Z);
    syn.set(0, true);
    MatchingGraph graph;
    graph.build(lat, ErrorType::Z, syn);
    ASSERT_EQ(graph.numNodes(), 1);
    EXPECT_EQ(graph.nodeTime(0), -1);
}

TEST(MajorityFallback, GreedyWindowMatchesSingleRoundDecode)
{
    // Greedy is not window-aware: a window whose rounds all agree
    // must decode exactly like the single measured syndrome.
    SurfaceLattice lat(5);
    GreedyDecoder greedy(lat, ErrorType::Z);
    EXPECT_FALSE(greedy.windowAware());

    ErrorState state(lat);
    state.flip(ErrorType::Z, 3);
    state.flip(ErrorType::Z, 11);
    const Syndrome syn = extractSyndrome(state, ErrorType::Z);

    SyndromeWindow win(lat, ErrorType::Z, 3);
    for (int t = 0; t < 3; ++t)
        win.recordRound(t, syn);

    TrialWorkspace ws;
    greedy.decodeWindow(win, ws);
    std::vector<int> windowed = ws.correction.dataFlips;
    greedy.decode(syn, ws);
    std::vector<int> single = ws.correction.dataFlips;
    std::sort(windowed.begin(), windowed.end());
    std::sort(single.begin(), single.end());
    EXPECT_EQ(windowed, single);
}

TEST(MajorityFallback, OutvotesOneNoisyRound)
{
    // One corrupted round in a 5-round window must not change the
    // majority reduction.
    SurfaceLattice lat(3);
    GreedyDecoder greedy(lat, ErrorType::Z);
    ErrorState state(lat);
    state.flip(ErrorType::Z, 0);
    const Syndrome truth = extractSyndrome(state, ErrorType::Z);
    Syndrome corrupted = truth;
    corrupted.flip(4);

    SyndromeWindow win(lat, ErrorType::Z, 5);
    win.recordRound(0, truth);
    win.recordRound(1, corrupted);
    win.recordRound(2, truth);
    win.recordRound(3, truth);
    win.recordRound(4, truth);

    TrialWorkspace ws;
    greedy.decodeWindow(win, ws);
    ws.correction.applyTo(state, ErrorType::Z);
    EXPECT_FALSE(classifyResidual(state, ErrorType::Z).failed());
}

} // namespace
} // namespace nisqpp
