/** @file Tests for the exhaustive lookup-table decoder. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "decoders/lut_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "surface/error_model.hh"
#include "surface/logical.hh"

namespace nisqpp {
namespace {

TEST(Lut, TableCoversAllSyndromes)
{
    SurfaceLattice lat(3);
    LutDecoder dec(lat, ErrorType::Z);
    EXPECT_EQ(dec.tableSize(), 64u); // 2^(d(d-1)) = 2^6
}

TEST(Lut, CorrectsAllWeightOneErrors)
{
    SurfaceLattice lat(3);
    for (ErrorType type : {ErrorType::Z, ErrorType::X}) {
        LutDecoder dec(lat, type);
        for (int q = 0; q < lat.numData(); ++q) {
            ErrorState st(lat);
            st.flip(type, q);
            const Correction corr =
                dec.decode(extractSyndrome(st, type));
            corr.applyTo(st, type);
            EXPECT_FALSE(classifyResidual(st, type).failed());
        }
    }
}

TEST(Lut, CorrectionIsMinimumWeight)
{
    // For every syndrome, the LUT correction weight is no larger than
    // the MWPM correction weight (the LUT is exhaustively optimal).
    SurfaceLattice lat(3);
    LutDecoder lut(lat, ErrorType::Z);
    MwpmDecoder mwpm(lat, ErrorType::Z);
    DephasingModel model(0.2);
    Rng rng(0x107);
    for (int t = 0; t < 300; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Syndrome syn = extractSyndrome(st, ErrorType::Z);
        const auto lc = lut.decode(syn);
        const auto mc = mwpm.decode(syn);
        ASSERT_LE(lc.dataFlips.size(), mc.dataFlips.size());
    }
}

TEST(Lut, AlwaysClearsSyndrome)
{
    SurfaceLattice lat(3);
    LutDecoder dec(lat, ErrorType::Z);
    DephasingModel model(0.25);
    Rng rng(0xabc);
    for (int t = 0; t < 300; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Correction corr =
            dec.decode(extractSyndrome(st, ErrorType::Z));
        corr.applyTo(st, ErrorType::Z);
        ASSERT_EQ(extractSyndrome(st, ErrorType::Z).weight(), 0);
    }
}

TEST(Lut, RejectsLargeLattices)
{
    SurfaceLattice lat(5);
    EXPECT_DEATH(LutDecoder(lat, ErrorType::Z), "brute force");
}

} // namespace
} // namespace nisqpp
