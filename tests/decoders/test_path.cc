/**
 * @file Property tests for correction-chain construction: a chain
 * between two ancillas must flip exactly those two ancillas; a boundary
 * chain must flip exactly its ancilla.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "decoders/path.hh"
#include "surface/syndrome.hh"

namespace nisqpp {
namespace {

class PathParam : public ::testing::TestWithParam<int>
{
};

TEST_P(PathParam, ChainFlipsExactlyTheEndpoints)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    Rng rng(0x9a7 + d);
    for (ErrorType type : {ErrorType::Z, ErrorType::X}) {
        const int na = lat.numAncilla(type);
        for (int trial = 0; trial < 60; ++trial) {
            const int a = static_cast<int>(rng.uniformInt(na));
            int b = static_cast<int>(rng.uniformInt(na));
            if (a == b)
                continue;
            const auto chain = chainBetweenAncillas(lat, type, a, b);
            EXPECT_EQ(static_cast<int>(chain.size()),
                      lat.ancillaGraphDistance(type, a, b));
            const Syndrome syn = syndromeOfFlips(lat, type, chain);
            EXPECT_EQ(syn.weight(), 2);
            EXPECT_TRUE(syn.hot(a));
            EXPECT_TRUE(syn.hot(b));
        }
    }
}

TEST_P(PathParam, BoundaryChainFlipsExactlyTheAncilla)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    for (ErrorType type : {ErrorType::Z, ErrorType::X}) {
        for (int a = 0; a < lat.numAncilla(type); ++a) {
            const auto chain = chainToBoundary(lat, type, a);
            EXPECT_EQ(static_cast<int>(chain.size()),
                      lat.ancillaBoundaryDistance(type, a));
            const Syndrome syn = syndromeOfFlips(lat, type, chain);
            EXPECT_EQ(syn.weight(), 1) << "ancilla " << a;
            EXPECT_TRUE(syn.hot(a));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, PathParam,
                         ::testing::Values(3, 5, 7, 9));

TEST(Path, AdjacentAncillasSingleQubitChain)
{
    SurfaceLattice lat(5);
    const ErrorType t = ErrorType::Z;
    const int a = lat.ancillaIndex(t, {0, 1});
    const int b = lat.ancillaIndex(t, {0, 3});
    const auto chain = chainBetweenAncillas(lat, t, a, b);
    ASSERT_EQ(chain.size(), 1u);
    EXPECT_EQ(chain[0], lat.dataIndex({0, 2}));
}

TEST(Path, LShapedChain)
{
    SurfaceLattice lat(5);
    const ErrorType t = ErrorType::Z;
    const int a = lat.ancillaIndex(t, {0, 1});
    const int b = lat.ancillaIndex(t, {2, 3});
    const auto chain = chainBetweenAncillas(lat, t, a, b);
    ASSERT_EQ(chain.size(), 2u);
    // Horizontal leg on a's row, then vertical on b's column.
    EXPECT_EQ(chain[0], lat.dataIndex({0, 2}));
    EXPECT_EQ(chain[1], lat.dataIndex({1, 3}));
}

} // namespace
} // namespace nisqpp
