/**
 * @file Workspace property tests: for every decoder family, decoding
 * through one long-lived TrialWorkspace (buffers dirty from *other*
 * decoders, distances and error types) must produce exactly the same
 * corrections as the workspace-free decode() entry point, across
 * lattices d = 3..11 and many random syndromes. Also pins the
 * frontier-scan union-find growth to a retained reference
 * implementation of the original whole-graph scan.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hh"
#include "core/mesh_decoder.hh"
#include "decoders/greedy_decoder.hh"
#include "decoders/lut_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "decoders/workspace.hh"
#include "surface/error_state.hh"
#include "surface/syndrome.hh"

namespace nisqpp {
namespace {

/** A random but valid syndrome: extracted from a random error state. */
Syndrome
randomSyndrome(Rng &rng, const SurfaceLattice &lat, ErrorType type,
               double p)
{
    ErrorState state(lat);
    for (int d = 0; d < lat.numData(); ++d)
        if (rng.bernoulli(p))
            state.flip(type, d);
    return extractSyndrome(state, type);
}

/**
 * The pre-frontier union-find decoder, retained verbatim as the
 * reference the production decoder is pinned against: whole-graph
 * edge scan per growth round, queue-based BFS peel over all vertices.
 */
class ReferenceUnionFind
{
  public:
    ReferenceUnionFind(const SurfaceLattice &lattice, ErrorType type)
        : lattice_(&lattice), type_(type)
    {
        const int na = lattice.numAncilla(type);
        numAncillaVertices_ = na;
        numVertices_ = na;
        incident_.resize(na);
        for (int d = 0; d < lattice.numData(); ++d) {
            const auto &ancs = lattice.dataAncillaNeighbors(type, d);
            if (ancs.size() == 2) {
                const int id = static_cast<int>(edges_.size());
                edges_.push_back({ancs[0], ancs[1], d});
                incident_[ancs[0]].push_back(id);
                incident_[ancs[1]].push_back(id);
            } else {
                const int bv = numVertices_++;
                incident_.emplace_back();
                const int id = static_cast<int>(edges_.size());
                edges_.push_back({ancs[0], bv, d});
                incident_[ancs[0]].push_back(id);
                incident_[bv].push_back(id);
            }
        }
    }

    std::vector<int>
    decode(const Syndrome &syndrome)
    {
        std::vector<int> corr;
        if (syndrome.weight() == 0)
            return corr;

        parent_.resize(numVertices_);
        rank_.assign(numVertices_, 0);
        parity_.assign(numVertices_, 0);
        boundary_.assign(numVertices_, 0);
        for (int v = 0; v < numVertices_; ++v)
            parent_[v] = v;
        for (int v = numAncillaVertices_; v < numVertices_; ++v)
            boundary_[v] = 1;
        for (int a = 0; a < numAncillaVertices_; ++a)
            parity_[a] = syndrome.hot(a);

        std::vector<char> support(edges_.size(), 0);
        auto clusterActive = [&](int v) {
            const int r = find(v);
            return parity_[r] && !boundary_[r];
        };
        for (;;) {
            bool any_active = false;
            std::vector<int> grown;
            for (std::size_t e = 0; e < edges_.size(); ++e) {
                if (support[e] >= 2)
                    continue;
                const bool a_act = clusterActive(edges_[e].u);
                const bool b_act = clusterActive(edges_[e].v);
                const int inc = (a_act ? 1 : 0) + (b_act ? 1 : 0);
                if (inc == 0)
                    continue;
                any_active = true;
                support[e] = static_cast<char>(
                    std::min(2, support[e] + inc));
                if (support[e] >= 2)
                    grown.push_back(static_cast<int>(e));
            }
            if (!any_active)
                break;
            for (int e : grown)
                unite(edges_[e].u, edges_[e].v);
        }

        std::vector<char> hot(numVertices_, 0);
        for (int a = 0; a < numAncillaVertices_; ++a)
            hot[a] = syndrome.hot(a);
        std::vector<int> parent_edge(numVertices_, -1);
        std::vector<int> bfs_order;
        std::vector<char> visited(numVertices_, 0);
        auto bfsFrom = [&](int root) {
            std::queue<int> q;
            q.push(root);
            visited[root] = 1;
            while (!q.empty()) {
                const int v = q.front();
                q.pop();
                bfs_order.push_back(v);
                for (int e : incident_[v]) {
                    if (support[e] < 2)
                        continue;
                    const int w = edges_[e].u == v ? edges_[e].v
                                                   : edges_[e].u;
                    if (visited[w])
                        continue;
                    visited[w] = 1;
                    parent_edge[w] = e;
                    q.push(w);
                }
            }
        };
        for (int v = numAncillaVertices_; v < numVertices_; ++v)
            if (!visited[v])
                bfsFrom(v);
        for (int v = 0; v < numAncillaVertices_; ++v)
            if (!visited[v])
                bfsFrom(v);

        for (std::size_t i = bfs_order.size(); i-- > 0;) {
            const int v = bfs_order[i];
            if (!hot[v] || parent_edge[v] < 0)
                continue;
            const auto &e = edges_[parent_edge[v]];
            const int p = e.u == v ? e.v : e.u;
            corr.push_back(e.dataIdx);
            hot[v] = 0;
            hot[p] ^= 1;
        }
        return corr;
    }

  private:
    struct GraphEdge
    {
        int u, v, dataIdx;
    };

    int find(int v)
    {
        while (parent_[v] != v) {
            parent_[v] = parent_[parent_[v]];
            v = parent_[v];
        }
        return v;
    }

    void unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        if (rank_[a] < rank_[b])
            std::swap(a, b);
        parent_[b] = a;
        if (rank_[a] == rank_[b])
            ++rank_[a];
        parity_[a] ^= parity_[b];
        boundary_[a] |= boundary_[b];
    }

    const SurfaceLattice *lattice_;
    ErrorType type_;
    std::vector<GraphEdge> edges_;
    std::vector<std::vector<int>> incident_;
    int numAncillaVertices_ = 0;
    int numVertices_ = 0;
    std::vector<int> parent_, rank_;
    std::vector<char> parity_, boundary_;
};

TEST(Workspace, UnionFindMatchesReferenceImplementation)
{
    Rng rng(0x0f4eULL);
    TrialWorkspace ws; // deliberately shared across everything below
    for (int d = 3; d <= 11; d += 2) {
        SurfaceLattice lat(d);
        for (const ErrorType type : {ErrorType::Z, ErrorType::X}) {
            UnionFindDecoder decoder(lat, type);
            ReferenceUnionFind reference(lat, type);
            for (int round = 0; round < 40; ++round) {
                const Syndrome syn =
                    randomSyndrome(rng, lat, type, 0.08);
                decoder.decode(syn, ws);
                EXPECT_EQ(ws.correction.dataFlips,
                          reference.decode(syn))
                    << "d=" << d << " round=" << round;
            }
        }
    }
}

TEST(Workspace, ReusedWorkspaceMatchesWorkspaceFreeDecodes)
{
    Rng rng(0xab5eULL);
    TrialWorkspace ws; // stays dirty across families and distances
    for (int d = 3; d <= 9; d += 2) {
        SurfaceLattice lat(d);
        for (const ErrorType type : {ErrorType::Z, ErrorType::X}) {
            std::vector<std::unique_ptr<Decoder>> decoders;
            decoders.push_back(
                std::make_unique<UnionFindDecoder>(lat, type));
            decoders.push_back(
                std::make_unique<MwpmDecoder>(lat, type));
            decoders.push_back(
                std::make_unique<GreedyDecoder>(lat, type));
            decoders.push_back(std::make_unique<MeshDecoder>(lat, type));
            if (d == 3)
                decoders.push_back(
                    std::make_unique<LutDecoder>(lat, type));
            for (int round = 0; round < 12; ++round) {
                const Syndrome syn =
                    randomSyndrome(rng, lat, type, 0.07);
                for (auto &decoder : decoders) {
                    const Correction fresh = decoder->decode(syn);
                    decoder->decode(syn, ws);
                    EXPECT_EQ(ws.correction.dataFlips, fresh.dataFlips)
                        << decoder->name() << " d=" << d;
                }
            }
        }
    }
}

TEST(Workspace, DefaultOverloadForwardsToPlainDecode)
{
    // A decoder that does not override the workspace overload must
    // still fill ws.correction via the base-class forwarding.
    class Doubler : public Decoder
    {
      public:
        using Decoder::Decoder;
        using Decoder::decode;
        Correction
        decode(const Syndrome &syndrome) override
        {
            Correction corr;
            syndrome.forEachHot(
                [&corr](int a) { corr.dataFlips.push_back(a); });
            return corr;
        }
        std::string name() const override { return "doubler"; }
    };

    SurfaceLattice lat(3);
    Doubler decoder(lat, ErrorType::Z);
    Syndrome syn(lat, ErrorType::Z);
    syn.set(1, true);
    syn.set(4, true);
    TrialWorkspace ws;
    ws.correction.dataFlips = {9, 9, 9}; // stale junk must vanish
    decoder.decode(syn, ws);
    EXPECT_EQ(ws.correction.dataFlips, (std::vector<int>{1, 4}));
}

TEST(Workspace, CorrectionsClearTheirSyndrome)
{
    // End-to-end sanity on top of equality: a UF correction decoded
    // through a reused workspace always returns the state to the code
    // space.
    Rng rng(0xdec0deULL);
    TrialWorkspace ws;
    for (int d = 3; d <= 11; d += 4) {
        SurfaceLattice lat(d);
        UnionFindDecoder decoder(lat, ErrorType::Z);
        for (int round = 0; round < 20; ++round) {
            ErrorState state(lat);
            for (int q = 0; q < lat.numData(); ++q)
                if (rng.bernoulli(0.08))
                    state.flip(ErrorType::Z, q);
            const Syndrome syn = extractSyndrome(state, ErrorType::Z);
            decoder.decode(syn, ws);
            ws.correction.applyTo(state, ErrorType::Z);
            EXPECT_FALSE(syndromeNonzero(state, ErrorType::Z));
        }
    }
}

} // namespace
} // namespace nisqpp
