/** @file Tests for the exact MWPM decoder. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "decoders/mwpm_decoder.hh"
#include "surface/error_model.hh"
#include "surface/logical.hh"

namespace nisqpp {
namespace {

class MwpmParam : public ::testing::TestWithParam<int>
{
};

TEST_P(MwpmParam, CorrectsAllWeightOneErrors)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    for (ErrorType type : {ErrorType::Z, ErrorType::X}) {
        MwpmDecoder dec(lat, type);
        for (int q = 0; q < lat.numData(); ++q) {
            ErrorState st(lat);
            st.flip(type, q);
            const Correction corr =
                dec.decode(extractSyndrome(st, type));
            corr.applyTo(st, type);
            const FailureReport rep = classifyResidual(st, type);
            EXPECT_FALSE(rep.failed()) << "d=" << d << " q=" << q;
        }
    }
}

TEST_P(MwpmParam, AlwaysClearsSyndromeOnRandomErrors)
{
    const int d = GetParam();
    SurfaceLattice lat(d);
    MwpmDecoder dec(lat, ErrorType::Z);
    DephasingModel model(0.08);
    Rng rng(0x3133 + d);
    for (int t = 0; t < 200; ++t) {
        ErrorState st(lat);
        model.sample(rng, st);
        const Correction corr =
            dec.decode(extractSyndrome(st, ErrorType::Z));
        corr.applyTo(st, ErrorType::Z);
        ASSERT_EQ(extractSyndrome(st, ErrorType::Z).weight(), 0)
            << "trial " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, MwpmParam,
                         ::testing::Values(3, 5, 7));

TEST(Mwpm, CorrectsUpToHalfDistance)
{
    // Every error of weight <= (d-1)/2 must be corrected (that is what
    // code distance means for an exact decoder).
    SurfaceLattice lat(5);
    MwpmDecoder dec(lat, ErrorType::Z);
    Rng rng(0x5a5a);
    for (int t = 0; t < 400; ++t) {
        ErrorState st(lat);
        // Random weight-2 patterns.
        const int q1 = static_cast<int>(rng.uniformInt(lat.numData()));
        int q2 = static_cast<int>(rng.uniformInt(lat.numData()));
        if (q1 == q2)
            continue;
        st.flip(ErrorType::Z, q1);
        st.flip(ErrorType::Z, q2);
        const Correction corr =
            dec.decode(extractSyndrome(st, ErrorType::Z));
        corr.applyTo(st, ErrorType::Z);
        const FailureReport rep = classifyResidual(st, ErrorType::Z);
        ASSERT_FALSE(rep.failed()) << "q1=" << q1 << " q2=" << q2;
    }
}

TEST(Mwpm, MatchingIsMinimal)
{
    // Two adjacent hot syndromes: the decoder must pair them directly
    // (weight 1), not via boundaries (weight 1+2).
    SurfaceLattice lat(5);
    MwpmDecoder dec(lat, ErrorType::Z);
    ErrorState st(lat);
    st.flip(ErrorType::Z, lat.dataIndex({2, 4}));
    const Correction corr = dec.decode(extractSyndrome(st, ErrorType::Z));
    ASSERT_EQ(corr.dataFlips.size(), 1u);
    EXPECT_EQ(corr.dataFlips[0], lat.dataIndex({2, 4}));
    ASSERT_EQ(dec.lastMatching().size(), 1u);
    EXPECT_FALSE(dec.lastMatching()[0].toBoundary);
}

TEST(Mwpm, PrefersBoundaryWhenCloser)
{
    SurfaceLattice lat(5);
    MwpmDecoder dec(lat, ErrorType::Z);
    // Two errors at opposite west/east edges: boundary matching (total
    // weight 2) beats pairing across the lattice (weight 4).
    ErrorState st(lat);
    st.flip(ErrorType::Z, lat.dataIndex({0, 0}));
    st.flip(ErrorType::Z, lat.dataIndex({4, 8}));
    const Correction corr = dec.decode(extractSyndrome(st, ErrorType::Z));
    ErrorState resid = st;
    // corr composed onto st:
    ErrorState check(lat);
    for (int f : corr.dataFlips)
        check.flip(ErrorType::Z, f);
    EXPECT_EQ(corr.dataFlips.size(), 2u);
    for (const auto &pair : dec.lastMatching())
        EXPECT_TRUE(pair.toBoundary);
}

TEST(Mwpm, EmptySyndromeEmptyCorrection)
{
    SurfaceLattice lat(3);
    MwpmDecoder dec(lat, ErrorType::Z);
    Syndrome syn(lat, ErrorType::Z);
    EXPECT_TRUE(dec.decode(syn).dataFlips.empty());
}

} // namespace
} // namespace nisqpp
