/**
 * @file Property tests for the Blossom min-weight perfect matcher:
 * random dense graphs validated against exhaustive brute force.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.hh"
#include "decoders/blossom.hh"

namespace nisqpp {
namespace {

/** Exhaustive min-weight perfect matching by recursion. */
long
bruteForce(const std::vector<std::vector<long>> &w, std::vector<int> &used,
           int matched)
{
    const int n = static_cast<int>(w.size());
    if (matched == n)
        return 0;
    int u = 0;
    while (used[u])
        ++u;
    used[u] = 1;
    long best = std::numeric_limits<long>::max() / 4;
    for (int v = u + 1; v < n; ++v) {
        if (used[v] || w[u][v] == BlossomMatcher::kAbsent)
            continue;
        used[v] = 1;
        const long rest = bruteForce(w, used, matched + 2);
        best = std::min(best, w[u][v] + rest);
        used[v] = 0;
    }
    used[u] = 0;
    return best;
}

long
matchingWeight(const std::vector<std::vector<long>> &w,
               const std::vector<int> &mate)
{
    long total = 0;
    for (int u = 0; u < static_cast<int>(mate.size()); ++u) {
        EXPECT_GE(mate[u], 0);
        EXPECT_EQ(mate[mate[u]], u);
        if (mate[u] > u)
            total += w[u][mate[u]];
    }
    return total;
}

TEST(Blossom, TrivialPair)
{
    BlossomMatcher m(2);
    m.setWeight(0, 1, 7);
    std::vector<int> mate;
    EXPECT_EQ(m.solve(mate), 7);
    EXPECT_EQ(mate[0], 1);
}

TEST(Blossom, FourVertexChoice)
{
    // Complete K4: optimal pairing must pick the cheap diagonal pairs.
    BlossomMatcher m(4);
    m.setWeight(0, 1, 10);
    m.setWeight(2, 3, 10);
    m.setWeight(0, 2, 1);
    m.setWeight(1, 3, 1);
    m.setWeight(0, 3, 8);
    m.setWeight(1, 2, 8);
    std::vector<int> mate;
    EXPECT_EQ(m.solve(mate), 2);
    EXPECT_EQ(mate[0], 2);
    EXPECT_EQ(mate[1], 3);
}

TEST(Blossom, OddCycleForcesBlossom)
{
    // Triangle plus pendant vertices: classic blossom-shrinking case.
    // Vertices 0-1-2 triangle (cheap), 3,4,5 pendants.
    BlossomMatcher m(6);
    m.setWeight(0, 1, 1);
    m.setWeight(1, 2, 1);
    m.setWeight(0, 2, 1);
    m.setWeight(0, 3, 4);
    m.setWeight(1, 4, 4);
    m.setWeight(2, 5, 4);
    m.setWeight(3, 4, 20);
    m.setWeight(4, 5, 20);
    m.setWeight(3, 5, 20);
    std::vector<int> mate;
    // Best: one triangle edge + one pendant + one expensive pendant
    // pair, e.g. (0,1),(2,5),(3,4) = 1+4+20 = 25? or all pendants:
    // 4+4+4 = 12 with triangle unmatched internally -> (0,3),(1,4),(2,5).
    EXPECT_EQ(m.solve(mate), 12);
}

TEST(Blossom, ZeroWeightEdgesAllowed)
{
    BlossomMatcher m(4);
    m.setWeight(0, 1, 0);
    m.setWeight(2, 3, 0);
    m.setWeight(0, 2, 5);
    m.setWeight(1, 3, 5);
    std::vector<int> mate;
    EXPECT_EQ(m.solve(mate), 0);
}

TEST(Blossom, InfeasiblePanics)
{
    BlossomMatcher m(4);
    m.setWeight(0, 1, 1); // vertices 2,3 isolated
    std::vector<int> mate;
    EXPECT_DEATH(m.solve(mate), "perfect matching");
}

/** Randomized comparison against brute force, sized by parameter. */
class BlossomRandom
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BlossomRandom, MatchesBruteForce)
{
    const auto [n, trials] = GetParam();
    Rng rng(0xb10550 + n);
    for (int t = 0; t < trials; ++t) {
        std::vector<std::vector<long>> w(
            n, std::vector<long>(n, BlossomMatcher::kAbsent));
        BlossomMatcher m(n);
        for (int u = 0; u < n; ++u) {
            for (int v = u + 1; v < n; ++v) {
                const long wt = static_cast<long>(rng.uniformInt(30));
                w[u][v] = w[v][u] = wt;
                m.setWeight(u, v, wt);
            }
        }
        std::vector<int> mate;
        const long got = m.solve(mate);
        EXPECT_EQ(got, matchingWeight(w, mate));
        std::vector<int> used(n, 0);
        const long want = bruteForce(w, used, 0);
        ASSERT_EQ(got, want) << "n=" << n << " trial=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BlossomRandom,
    ::testing::Values(std::tuple{2, 50}, std::tuple{4, 80},
                      std::tuple{6, 80}, std::tuple{8, 60},
                      std::tuple{10, 40}, std::tuple{12, 20}));

TEST(Blossom, SparseRandomGraphs)
{
    // Sparse instances stress the absent-edge handling; skip instances
    // with no perfect matching (detected via brute force).
    Rng rng(0xcafe);
    for (int t = 0; t < 60; ++t) {
        const int n = 8;
        std::vector<std::vector<long>> w(
            n, std::vector<long>(n, BlossomMatcher::kAbsent));
        BlossomMatcher m(n);
        // A Hamilton cycle guarantees feasibility; extra random edges.
        for (int u = 0; u < n; ++u) {
            const int v = (u + 1) % n;
            const long wt = static_cast<long>(rng.uniformInt(20));
            if (w[u][v] == BlossomMatcher::kAbsent) {
                w[u][v] = w[v][u] = wt;
                m.setWeight(u, v, wt);
            }
        }
        for (int extra = 0; extra < 6; ++extra) {
            const int u = static_cast<int>(rng.uniformInt(n));
            const int v = static_cast<int>(rng.uniformInt(n));
            if (u == v || w[u][v] != BlossomMatcher::kAbsent)
                continue;
            const long wt = static_cast<long>(rng.uniformInt(20));
            w[u][v] = w[v][u] = wt;
            m.setWeight(u, v, wt);
        }
        std::vector<int> mate;
        const long got = m.solve(mate);
        std::vector<int> used(n, 0);
        ASSERT_EQ(got, bruteForce(w, used, 0)) << "trial " << t;
    }
}

} // namespace
} // namespace nisqpp
