/** @file Tests for the xoshiro256** RNG wrapper. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace nisqpp {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(9);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.uniformInt(6));
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(21);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace nisqpp
