/** @file Runtime SIMD dispatch: NISQPP_SIMD validation must warn and
 * keep the fallback width (exactly like NISQPP_BATCH), parseWidth is
 * the hard-failing CLI contract, and the shared lane-word element
 * accessors behave identically at every width. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/simd.hh"

namespace nisqpp {
namespace {

/** Scoped NISQPP_SIMD override restoring the prior value on exit. */
class SimdEnv
{
  public:
    explicit SimdEnv(const char *value)
    {
        const char *prior = std::getenv("NISQPP_SIMD");
        if (prior) {
            saved_ = prior;
            hadValue_ = true;
        }
        if (value)
            setenv("NISQPP_SIMD", value, 1);
        else
            unsetenv("NISQPP_SIMD");
    }
    ~SimdEnv()
    {
        if (hadValue_)
            setenv("NISQPP_SIMD", saved_.c_str(), 1);
        else
            unsetenv("NISQPP_SIMD");
    }

  private:
    std::string saved_;
    bool hadValue_ = false;
};

TEST(Simd, ParseWidthAcceptsTheThreeNames)
{
    simd::Width w = simd::Width::Scalar;
    EXPECT_TRUE(simd::parseWidth("scalar", w));
    EXPECT_EQ(w, simd::Width::Scalar);
    EXPECT_TRUE(simd::parseWidth("v256", w));
    EXPECT_EQ(w, simd::Width::V256);
    EXPECT_TRUE(simd::parseWidth("v512", w));
    EXPECT_EQ(w, simd::Width::V512);
}

TEST(Simd, ParseWidthRejectsEverythingElse)
{
    simd::Width w = simd::Width::V256;
    for (const char *bad : {"", "avx2", "avx512", "256", "V256",
                            "scalar ", " v512", "v1024"}) {
        EXPECT_FALSE(simd::parseWidth(bad, w)) << "'" << bad << "'";
        EXPECT_EQ(w, simd::Width::V256) << "'" << bad
                                        << "' clobbered the out-param";
    }
}

TEST(Simd, WidthNameRoundTrips)
{
    for (simd::Width w : {simd::Width::Scalar, simd::Width::V256,
                          simd::Width::V512}) {
        simd::Width parsed = simd::Width::Scalar;
        EXPECT_TRUE(simd::parseWidth(simd::widthName(w), parsed));
        EXPECT_EQ(parsed, w);
    }
}

TEST(Simd, EnvUnsetKeepsFallback)
{
    SimdEnv env(nullptr);
    EXPECT_EQ(simd::widthFromEnv(simd::Width::Scalar),
              simd::Width::Scalar);
    EXPECT_EQ(simd::widthFromEnv(simd::Width::V512),
              simd::Width::V512);
}

TEST(Simd, EnvValidValueIsUsed)
{
    SimdEnv env("v256");
    EXPECT_EQ(simd::widthFromEnv(simd::Width::Scalar),
              simd::Width::V256);
}

TEST(Simd, EnvInvalidValueWarnsAndKeepsFallback)
{
    // Warn-and-ignore, exactly like NISQPP_BATCH: a malformed value
    // must never change behavior, only print a warning.
    for (const char *bad : {"avx2", "512", "v256 ", "fastest"}) {
        SimdEnv env(bad);
        EXPECT_EQ(simd::widthFromEnv(simd::Width::V256),
                  simd::Width::V256)
            << "'" << bad << "'";
    }
}

TEST(Simd, ActiveWidthLatchesAndRestores)
{
    const simd::Width before = simd::activeWidth();
    for (simd::Width w : {simd::Width::Scalar, simd::Width::V256,
                          simd::Width::V512}) {
        simd::setActiveWidth(w);
        EXPECT_EQ(simd::activeWidth(), w);
    }
    simd::setActiveWidth(before);
    EXPECT_EQ(simd::activeWidth(), before);
}

TEST(Simd, DetectWidthIsAValidWidth)
{
    const simd::Width w = simd::detectWidth();
    EXPECT_TRUE(w == simd::Width::Scalar || w == simd::Width::V256 ||
                w == simd::Width::V512);
}

/** The element accessors must agree across all three word types. */
template <typename W>
void
exerciseAccessors()
{
    constexpr int elements = simd::elementsOf<W>();
    EXPECT_EQ(elements, static_cast<int>(sizeof(W) / 8));

    W w{};
    EXPECT_FALSE(simd::anyW(w));
    for (int el = 0; el < elements; ++el)
        EXPECT_EQ(simd::elemOf(w, el), 0u);

    simd::orElem(w, 0, 0x5ULL);
    simd::orElem(w, elements - 1, 0xa0ULL);
    simd::orElem(w, elements - 1, 0x0bULL);
    EXPECT_TRUE(simd::anyW(w));
    EXPECT_EQ(simd::elemOf(w, 0),
              elements == 1 ? 0xafULL : 0x5ULL);
    EXPECT_EQ(simd::elemOf(w, elements - 1),
              elements == 1 ? 0xafULL : 0xabULL);
    for (int el = 1; el + 1 < elements; ++el)
        EXPECT_EQ(simd::elemOf(w, el), 0u);
}

TEST(Simd, ElementAccessorsAgreeAcrossWordTypes)
{
    exerciseAccessors<simd::W64>();
    exerciseAccessors<simd::W256>();
    exerciseAccessors<simd::W512>();
}

} // namespace
} // namespace nisqpp
