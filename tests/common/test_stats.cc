/** @file Tests for running statistics, histograms, Wilson intervals. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/stats.hh"

namespace nisqpp {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    Rng rng(5);
    RunningStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform() * 10;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, BinsAndOverflow)
{
    Histogram h(4);
    for (std::size_t v : {0u, 1u, 1u, 4u, 9u})
        h.add(v);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(1), 2u);
    EXPECT_EQ(h.bin(4), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.density(1), 0.4);
    EXPECT_EQ(h.firstNonzero(), 0u);
    EXPECT_EQ(h.lastNonzero(), 4u);
}

TEST(Histogram, MergeMatchesSequential)
{
    Histogram all(6), a(6), b(6);
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        const std::size_t v = rng.uniformInt(10); // some overflow
        all.add(v);
        (i % 3 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.total(), all.total());
    EXPECT_EQ(a.overflow(), all.overflow());
    for (std::size_t i = 0; i < all.numBins(); ++i)
        EXPECT_EQ(a.bin(i), all.bin(i));
}

TEST(Histogram, MergeAccumulatesOverflow)
{
    Histogram a(2), b(2);
    a.add(5);
    b.add(7);
    b.add(1);
    a.merge(b);
    EXPECT_EQ(a.overflow(), 2u);
    EXPECT_EQ(a.bin(1), 1u);
    EXPECT_EQ(a.total(), 3u);
}

TEST(Histogram, EmptyAccumulatorAdoptsBinning)
{
    Histogram acc(0); // default-constructed result accumulator shape
    Histogram shard(8);
    shard.add(3);
    shard.add(12);
    acc.merge(shard);
    EXPECT_EQ(acc.numBins(), 9u);
    EXPECT_EQ(acc.bin(3), 1u);
    EXPECT_EQ(acc.overflow(), 1u);
    EXPECT_EQ(acc.total(), 2u);
}

TEST(Histogram, MergeEmptyOtherIsNoop)
{
    Histogram a(4), empty(9);
    a.add(2);
    a.merge(empty);
    EXPECT_EQ(a.numBins(), 5u);
    EXPECT_EQ(a.total(), 1u);
    EXPECT_EQ(a.bin(2), 1u);
}

TEST(Histogram, MergeEmptyIntoEmptyKeepsShape)
{
    Histogram a(0), b(5);
    a.merge(b);
    EXPECT_EQ(a.total(), 0u);
    EXPECT_EQ(a.numBins(), 1u); // nothing adopted from empty input
}

TEST(HistogramDeathTest, MergeIncompatibleBinsPanics)
{
    Histogram a(4), b(9);
    a.add(1);
    b.add(1);
    EXPECT_DEATH(a.merge(b), "incompatible binning");
}

TEST(Histogram, EmptyDensity)
{
    Histogram h(3);
    EXPECT_DOUBLE_EQ(h.density(0), 0.0);
    EXPECT_EQ(h.firstNonzero(), h.numBins());
}

TEST(Wilson, ZeroTrials)
{
    const auto ci = wilson95(0, 0);
    EXPECT_DOUBLE_EQ(ci.lo, 0.0);
    EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(Wilson, BracketsPointEstimate)
{
    const auto ci = wilson95(30, 100);
    EXPECT_LT(ci.lo, 0.3);
    EXPECT_GT(ci.hi, 0.3);
    EXPECT_GT(ci.lo, 0.2);
    EXPECT_LT(ci.hi, 0.41);
}

TEST(Wilson, ShrinksWithSamples)
{
    const auto narrow = wilson95(300, 1000);
    const auto wide = wilson95(30, 100);
    EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(Wilson, ZeroFailuresStillPositiveUpper)
{
    const auto ci = wilson95(0, 1000);
    EXPECT_NEAR(ci.lo, 0.0, 1e-12);
    EXPECT_GT(ci.hi, 0.0);
    EXPECT_LT(ci.hi, 0.01);
}

} // namespace
} // namespace nisqpp
