/**
 * @file Unit tests of the word-packed bitset underpinning the per-trial
 * hot paths: bit accessors across word boundaries, XOR composition,
 * popcount/parity reductions against naive recomputation, and the
 * all-trailing-bits-zero invariant that makes operator== plain word
 * comparison.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/packed_bits.hh"
#include "common/rng.hh"

namespace nisqpp {
namespace {

TEST(PackedBits, SetGetFlipAcrossWordBoundaries)
{
    for (std::size_t size : {1u, 63u, 64u, 65u, 128u, 200u}) {
        PackedBits bits(size);
        EXPECT_EQ(bits.size(), size);
        for (std::size_t i = 0; i < size; ++i)
            EXPECT_FALSE(bits.get(i));

        bits.set(0, true);
        bits.set(size - 1, true);
        EXPECT_TRUE(bits.get(0));
        EXPECT_TRUE(bits.get(size - 1));
        EXPECT_EQ(bits.popcount(), size == 1 ? 1 : 2);

        bits.flip(size - 1);
        EXPECT_FALSE(bits.get(size - 1));
        bits.clear();
        EXPECT_EQ(bits.popcount(), 0);
        EXPECT_FALSE(bits.any());
    }
}

TEST(PackedBits, TestCheckedAccessorPanicsOutOfRange)
{
    PackedBits bits(10);
    EXPECT_TRUE(bits.test(9) == false);
    EXPECT_DEATH(bits.test(10), "out of range");
}

TEST(PackedBits, XorMatchesReferenceVectors)
{
    Rng rng(0x9a11ULL);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t size = 1 + rng.uniformInt(300);
        PackedBits a(size), b(size);
        std::vector<char> ra(size, 0), rb(size, 0);
        for (std::size_t i = 0; i < size; ++i) {
            if (rng.bernoulli(0.3)) {
                a.set(i, true);
                ra[i] = 1;
            }
            if (rng.bernoulli(0.3)) {
                b.set(i, true);
                rb[i] = 1;
            }
        }
        a.xorWith(b);
        int expected_weight = 0;
        for (std::size_t i = 0; i < size; ++i) {
            const char want = ra[i] ^ rb[i];
            EXPECT_EQ(a.get(i), static_cast<bool>(want));
            expected_weight += want;
        }
        EXPECT_EQ(a.popcount(), expected_weight);
    }
}

TEST(PackedBits, MaskedReductionsMatchNaive)
{
    Rng rng(0xfaceULL);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t size = 1 + rng.uniformInt(200);
        PackedBits bits(size), mask(size);
        int and_count = 0, or_count = 0;
        char parity = 0;
        for (std::size_t i = 0; i < size; ++i) {
            const bool b = rng.bernoulli(0.4);
            const bool m = rng.bernoulli(0.4);
            bits.set(i, b);
            mask.set(i, m);
            and_count += b && m;
            or_count += b || m;
            parity ^= static_cast<char>(b && m);
        }
        EXPECT_EQ(bits.popcountAnd(mask), and_count);
        EXPECT_EQ(bits.parityAnd(mask), static_cast<bool>(parity));
        EXPECT_EQ(PackedBits::popcountOr(bits, mask), or_count);
    }
}

TEST(PackedBits, AndNotClearsMaskedBits)
{
    PackedBits bits(130), mask(130);
    for (std::size_t i = 0; i < 130; ++i)
        bits.set(i, true);
    for (std::size_t i = 0; i < 130; i += 3)
        mask.set(i, true);
    bits.andNotWith(mask);
    for (std::size_t i = 0; i < 130; ++i)
        EXPECT_EQ(bits.get(i), i % 3 != 0) << i;
}

TEST(PackedBits, ForEachSetVisitsAscending)
{
    PackedBits bits(200);
    const std::vector<int> want{0, 5, 63, 64, 65, 127, 128, 199};
    for (int i : want)
        bits.set(i, true);
    std::vector<int> got;
    bits.forEachSet([&got](int i) { got.push_back(i); });
    EXPECT_EQ(got, want);
}

TEST(PackedBits, EqualityIsValueEquality)
{
    PackedBits a(100), b(100), c(101);
    a.set(77, true);
    EXPECT_NE(a, b);
    b.set(77, true);
    EXPECT_EQ(a, b);
    // Same first 100 bits, different size: never equal.
    c.set(77, true);
    EXPECT_FALSE(a == c);
    // Resize zero-fills, restoring equality with a fresh bitset.
    a.resize(100);
    EXPECT_EQ(a, PackedBits(100));
}

} // namespace
} // namespace nisqpp
