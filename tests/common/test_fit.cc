/** @file Tests for least-squares fitting of the scaling model. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fit.hh"

namespace nisqpp {
namespace {

TEST(FitLinear, ExactLine)
{
    const std::vector<double> xs{0, 1, 2, 3, 4};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(2.5 * x - 1.0);
    const LinearFit fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 2.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLinear, NoisyLineLowR2)
{
    const std::vector<double> xs{0, 1, 2, 3};
    const std::vector<double> ys{0, 5, -3, 2};
    const LinearFit fit = fitLinear(xs, ys);
    EXPECT_LT(fit.r2, 0.9);
}

TEST(FitScaling, RecoversModelParameters)
{
    // Generate PL = c1 (p/pth)^(c2 d) exactly and recover c1, c2.
    const double c1 = 0.05, c2 = 0.45, pth = 0.05;
    const int d = 7;
    std::vector<double> ps, pls;
    for (double p : {0.005, 0.01, 0.02, 0.03, 0.04})
    {
        ps.push_back(p);
        pls.push_back(c1 * std::pow(p / pth, c2 * d));
    }
    const ScalingFit fit = fitScalingModel(ps, pls, pth, d);
    EXPECT_NEAR(fit.c1, c1, 1e-10);
    EXPECT_NEAR(fit.c2, c2, 1e-10);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitScaling, SkipsZeroSamples)
{
    const std::vector<double> ps{0.01, 0.02, 0.03, 0.04};
    const std::vector<double> pls{0.0, 1e-3, 2e-3, 4e-3};
    const ScalingFit fit = fitScalingModel(ps, pls, 0.05, 3);
    EXPECT_GT(fit.c2, 0.0);
}

/** Parameterized exact-recovery sweep across distances. */
class FitScalingParam : public ::testing::TestWithParam<int>
{
};

TEST_P(FitScalingParam, RecoveryAcrossDistances)
{
    const int d = GetParam();
    const double c1 = 0.03, c2 = 0.65, pth = 0.05;
    std::vector<double> ps, pls;
    for (double p : {0.01, 0.015, 0.02, 0.03})
    {
        ps.push_back(p);
        pls.push_back(c1 * std::pow(p / pth, c2 * d));
    }
    const ScalingFit fit = fitScalingModel(ps, pls, pth, d);
    EXPECT_NEAR(fit.c2, c2, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Distances, FitScalingParam,
                         ::testing::Values(3, 5, 7, 9, 11));

} // namespace
} // namespace nisqpp
