/** @file Tests for the aligned table printer. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace nisqpp {
namespace {

TEST(Table, AlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header and separator and two rows.
    int lines = 0;
    for (char c : out)
        lines += (c == '\n');
    EXPECT_EQ(lines, 4);
}

TEST(Table, CsvOutput)
{
    TablePrinter t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 3), "3.14");
    EXPECT_EQ(TablePrinter::sci(12345.0, 2), "1.23e+04");
}

} // namespace
} // namespace nisqpp
