/**
 * @file Shared fault-directive env parsing: the strict token parsers,
 * the NISQPP_FAULT_INJECT write-fault plan and the
 * NISQPP_STREAM_FAULTS spec twin all follow the warn-and-ignore
 * contract (malformed value -> warning, configuration untouched).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/fault_env.hh"
#include "faults/fault_plan.hh"

namespace nisqpp {
namespace {

/** Scoped env override restoring the prior value (ckpt-test idiom). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *prior = std::getenv(name);
        if (prior) {
            saved_ = prior;
            hadValue_ = true;
        }
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (hadValue_)
            setenv(name_.c_str(), saved_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool hadValue_ = false;
};

TEST(FaultEnvSplit, WellFormedListSplits)
{
    std::vector<faultenv::Directive> out;
    ASSERT_TRUE(faultenv::splitDirectives("a=1,bb=0.5,c=x", out));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].key, "a");
    EXPECT_EQ(out[0].value, "1");
    EXPECT_EQ(out[1].key, "bb");
    EXPECT_EQ(out[1].value, "0.5");
    EXPECT_EQ(out[2].key, "c");
    EXPECT_EQ(out[2].value, "x");
}

TEST(FaultEnvSplit, MalformedTokensRejected)
{
    std::vector<faultenv::Directive> out;
    EXPECT_FALSE(faultenv::splitDirectives("", out));
    EXPECT_FALSE(faultenv::splitDirectives("noequals", out));
    EXPECT_FALSE(faultenv::splitDirectives("=1", out));
    EXPECT_FALSE(faultenv::splitDirectives("a=", out));
    EXPECT_FALSE(faultenv::splitDirectives("a=1=2", out));
    EXPECT_FALSE(faultenv::splitDirectives("a=1,,b=2", out));
    EXPECT_FALSE(faultenv::splitDirectives("a=1,b=2,", out));
}

TEST(FaultEnvParse, CountIsStrictDigitsOnly)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(faultenv::parseCount("7", v));
    EXPECT_EQ(v, 7u);
    EXPECT_TRUE(faultenv::parseCount("1000000", v));
    EXPECT_EQ(v, 1000000u);
    EXPECT_FALSE(faultenv::parseCount("", v));
    EXPECT_FALSE(faultenv::parseCount("0", v));
    EXPECT_FALSE(faultenv::parseCount("-3", v));
    EXPECT_FALSE(faultenv::parseCount("3.5", v));
    EXPECT_FALSE(faultenv::parseCount("12x", v));
    EXPECT_FALSE(faultenv::parseCount(" 4", v));
}

TEST(FaultEnvParse, RateIsStrictUnitInterval)
{
    double v = -1.0;
    EXPECT_TRUE(faultenv::parseRate("0", v));
    EXPECT_DOUBLE_EQ(v, 0.0);
    EXPECT_TRUE(faultenv::parseRate("0.25", v));
    EXPECT_DOUBLE_EQ(v, 0.25);
    EXPECT_TRUE(faultenv::parseRate("1", v));
    EXPECT_DOUBLE_EQ(v, 1.0);
    EXPECT_TRUE(faultenv::parseRate("1e-2", v));
    EXPECT_DOUBLE_EQ(v, 0.01);
    EXPECT_FALSE(faultenv::parseRate("", v));
    EXPECT_FALSE(faultenv::parseRate("1.5", v));
    EXPECT_FALSE(faultenv::parseRate("-0.1", v));
    EXPECT_FALSE(faultenv::parseRate("nan", v));
    EXPECT_FALSE(faultenv::parseRate("inf", v));
    EXPECT_FALSE(faultenv::parseRate("0.5x", v));
}

TEST(WriteFaultEnv, ParsesKillAndTear)
{
    {
        ScopedEnv env("NISQPP_FAULT_INJECT", "kill-after=3");
        const faultenv::WriteFaultPlan plan =
            faultenv::writeFaultPlanFromEnv();
        EXPECT_EQ(plan.mode, faultenv::WriteFaultMode::Kill);
        EXPECT_EQ(plan.afterWrites, 3u);
    }
    {
        ScopedEnv env("NISQPP_FAULT_INJECT", "tear-after=12");
        const faultenv::WriteFaultPlan plan =
            faultenv::writeFaultPlanFromEnv();
        EXPECT_EQ(plan.mode, faultenv::WriteFaultMode::Tear);
        EXPECT_EQ(plan.afterWrites, 12u);
    }
}

TEST(WriteFaultEnv, UnsetOrMalformedDisables)
{
    const char *bad[] = {"explode-after=3", "kill-after=",
                         "kill-after=0",    "kill-after=2.5",
                         "kill-after=9x",   "tear-after=-1"};
    {
        ScopedEnv env("NISQPP_FAULT_INJECT", nullptr);
        EXPECT_EQ(faultenv::writeFaultPlanFromEnv().mode,
                  faultenv::WriteFaultMode::None);
    }
    for (const char *value : bad) {
        ScopedEnv env("NISQPP_FAULT_INJECT", value);
        const faultenv::WriteFaultPlan plan =
            faultenv::writeFaultPlanFromEnv();
        EXPECT_EQ(plan.mode, faultenv::WriteFaultMode::None) << value;
        EXPECT_EQ(plan.afterWrites, 0u) << value;
    }
}

TEST(StreamFaultEnv, UnsetLeavesSpecAndReportsAbsent)
{
    ScopedEnv env("NISQPP_STREAM_FAULTS", nullptr);
    faults::FaultSpec spec;
    EXPECT_FALSE(faults::streamFaultsFromEnv(spec));
    EXPECT_FALSE(spec.any());
}

TEST(StreamFaultEnv, WellFormedListUpdatesEveryKnob)
{
    ScopedEnv env("NISQPP_STREAM_FAULTS",
                  "drop=0.1,corrupt=0.05,dup=0.02,delay=0.2,"
                  "delay-cycles=5,stall=0.3,stall-factor=2.5,"
                  "fail=0.01,seed=99");
    faults::FaultSpec spec;
    ASSERT_TRUE(faults::streamFaultsFromEnv(spec));
    EXPECT_DOUBLE_EQ(spec.dropRate, 0.1);
    EXPECT_DOUBLE_EQ(spec.corruptRate, 0.05);
    EXPECT_DOUBLE_EQ(spec.duplicateRate, 0.02);
    EXPECT_DOUBLE_EQ(spec.delayRate, 0.2);
    EXPECT_EQ(spec.delayCycles, 5);
    EXPECT_DOUBLE_EQ(spec.stallRate, 0.3);
    EXPECT_DOUBLE_EQ(spec.stallFactor, 2.5);
    EXPECT_DOUBLE_EQ(spec.decodeFailRate, 0.01);
    EXPECT_EQ(spec.seed, 99u);
}

TEST(StreamFaultEnv, MalformedDirectiveLeavesSpecUntouched)
{
    // Two-phase apply: the good leading directive must not land when a
    // later one is bad (half-applied env vars are worse than ignored).
    const char *bad[] = {"drop=0.1,corrupt=2.0", "drop=abc",
                         "unknown=0.1",          "drop",
                         "delay-cycles=0",       "stall-factor=0.5",
                         "seed=0"};
    for (const char *value : bad) {
        ScopedEnv env("NISQPP_STREAM_FAULTS", value);
        faults::FaultSpec spec;
        EXPECT_FALSE(faults::streamFaultsFromEnv(spec)) << value;
        EXPECT_FALSE(spec.any()) << value;
        EXPECT_EQ(spec.seed, faults::FaultSpec{}.seed) << value;
    }
}

} // namespace
} // namespace nisqpp
