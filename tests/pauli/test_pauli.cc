/** @file Tests for Pauli group algebra. */

#include <gtest/gtest.h>

#include "pauli/pauli.hh"

namespace nisqpp {
namespace {

TEST(Pauli, Components)
{
    EXPECT_FALSE(hasX(Pauli::I));
    EXPECT_FALSE(hasZ(Pauli::I));
    EXPECT_TRUE(hasX(Pauli::X));
    EXPECT_FALSE(hasZ(Pauli::X));
    EXPECT_FALSE(hasX(Pauli::Z));
    EXPECT_TRUE(hasZ(Pauli::Z));
    EXPECT_TRUE(hasX(Pauli::Y));
    EXPECT_TRUE(hasZ(Pauli::Y));
}

TEST(Pauli, ProductTable)
{
    // Full 4x4 multiplication table modulo phase.
    EXPECT_EQ(mul(Pauli::I, Pauli::X), Pauli::X);
    EXPECT_EQ(mul(Pauli::X, Pauli::X), Pauli::I);
    EXPECT_EQ(mul(Pauli::X, Pauli::Z), Pauli::Y);
    EXPECT_EQ(mul(Pauli::Z, Pauli::X), Pauli::Y);
    EXPECT_EQ(mul(Pauli::Y, Pauli::X), Pauli::Z);
    EXPECT_EQ(mul(Pauli::Y, Pauli::Z), Pauli::X);
    EXPECT_EQ(mul(Pauli::Y, Pauli::Y), Pauli::I);
    EXPECT_EQ(mul(Pauli::Z, Pauli::Z), Pauli::I);
}

TEST(Pauli, SelfInverse)
{
    for (Pauli p : {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z})
        EXPECT_EQ(mul(p, p), Pauli::I);
}

TEST(Pauli, CommutationTable)
{
    // I commutes with all; distinct non-identity Paulis anticommute.
    for (Pauli p : {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z}) {
        EXPECT_TRUE(commutes(Pauli::I, p));
        EXPECT_TRUE(commutes(p, p));
    }
    EXPECT_FALSE(commutes(Pauli::X, Pauli::Z));
    EXPECT_FALSE(commutes(Pauli::X, Pauli::Y));
    EXPECT_FALSE(commutes(Pauli::Y, Pauli::Z));
}

TEST(Pauli, FromXZRoundTrip)
{
    for (Pauli p : {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z})
        EXPECT_EQ(fromXZ(hasX(p), hasZ(p)), p);
}

TEST(Pauli, Names)
{
    EXPECT_EQ(toString(Pauli::I), "I");
    EXPECT_EQ(toString(Pauli::X), "X");
    EXPECT_EQ(toString(Pauli::Y), "Y");
    EXPECT_EQ(toString(Pauli::Z), "Z");
}

} // namespace
} // namespace nisqpp
