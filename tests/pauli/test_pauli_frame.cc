/** @file Tests for the Pauli-frame Clifford simulator. */

#include <gtest/gtest.h>

#include "pauli/pauli_frame.hh"

namespace nisqpp {
namespace {

TEST(PauliFrame, InjectAndRead)
{
    PauliFrame f(3);
    f.inject(1, Pauli::Y);
    EXPECT_EQ(f.frame(0), Pauli::I);
    EXPECT_EQ(f.frame(1), Pauli::Y);
    f.inject(1, Pauli::X);
    EXPECT_EQ(f.frame(1), Pauli::Z);
}

TEST(PauliFrame, HadamardSwapsXZ)
{
    PauliFrame f(1);
    f.inject(0, Pauli::X);
    f.applyH(0);
    EXPECT_EQ(f.frame(0), Pauli::Z);
    f.applyH(0);
    EXPECT_EQ(f.frame(0), Pauli::X);
}

TEST(PauliFrame, HadamardFixesY)
{
    PauliFrame f(1);
    f.inject(0, Pauli::Y);
    f.applyH(0);
    EXPECT_EQ(f.frame(0), Pauli::Y);
}

TEST(PauliFrame, PhaseGateTurnsXIntoY)
{
    PauliFrame f(1);
    f.inject(0, Pauli::X);
    f.applyS(0);
    EXPECT_EQ(f.frame(0), Pauli::Y);
    // Z is unaffected.
    PauliFrame g(1);
    g.inject(0, Pauli::Z);
    g.applyS(0);
    EXPECT_EQ(g.frame(0), Pauli::Z);
}

/**
 * CNOT conjugation across all 16 two-qubit Pauli inputs, checked
 * against the standard propagation rules: X on control copies to
 * target, Z on target copies to control.
 */
class CnotConjugation
    : public ::testing::TestWithParam<std::tuple<Pauli, Pauli>>
{
};

TEST_P(CnotConjugation, MatchesRules)
{
    const auto [pc, pt] = GetParam();
    PauliFrame f(2);
    f.inject(0, pc);
    f.inject(1, pt);
    f.applyCnot(0, 1);
    const bool cx = hasX(pc);
    const bool cz = hasZ(pc) ^ hasZ(pt);
    const bool tx = hasX(pt) ^ hasX(pc);
    const bool tz = hasZ(pt);
    EXPECT_EQ(f.frame(0), fromXZ(cx, cz));
    EXPECT_EQ(f.frame(1), fromXZ(tx, tz));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CnotConjugation,
    ::testing::Combine(::testing::Values(Pauli::I, Pauli::X, Pauli::Y,
                                         Pauli::Z),
                       ::testing::Values(Pauli::I, Pauli::X, Pauli::Y,
                                         Pauli::Z)));

TEST(PauliFrame, CzSymmetric)
{
    PauliFrame f(2);
    f.inject(0, Pauli::X);
    f.applyCz(0, 1);
    EXPECT_EQ(f.frame(0), Pauli::X);
    EXPECT_EQ(f.frame(1), Pauli::Z);

    PauliFrame g(2);
    g.inject(1, Pauli::X);
    g.applyCz(0, 1);
    EXPECT_EQ(g.frame(0), Pauli::Z);
    EXPECT_EQ(g.frame(1), Pauli::X);
}

TEST(PauliFrame, MeasurementFlipsOnXComponent)
{
    PauliFrame f(2);
    f.inject(0, Pauli::X);
    f.inject(1, Pauli::Z);
    EXPECT_TRUE(f.measureZ(0));
    EXPECT_FALSE(f.measureZ(1));
    // Measurement collapses the frame.
    EXPECT_EQ(f.frame(0), Pauli::I);
    EXPECT_EQ(f.frame(1), Pauli::I);
}

TEST(PauliFrame, ResetClearsQubit)
{
    PauliFrame f(1);
    f.inject(0, Pauli::Y);
    f.reset(0);
    EXPECT_EQ(f.frame(0), Pauli::I);
}

TEST(PauliFrame, ClearWholeFrame)
{
    PauliFrame f(4);
    for (std::size_t q = 0; q < 4; ++q)
        f.inject(q, Pauli::X);
    f.clear();
    for (std::size_t q = 0; q < 4; ++q)
        EXPECT_EQ(f.frame(q), Pauli::I);
}

} // namespace
} // namespace nisqpp
