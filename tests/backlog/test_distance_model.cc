/** @file Tests for the Fig. 11 required-code-distance model. */

#include <gtest/gtest.h>

#include <cmath>

#include "backlog/distance_model.hh"

namespace nisqpp {
namespace {

TEST(DistanceModel, EffectiveGatesFastDecoder)
{
    EXPECT_DOUBLE_EQ(logEffectiveGates(0.5, 100), std::log(100.0));
    EXPECT_DOUBLE_EQ(logEffectiveGates(1.0, 100), std::log(100.0));
}

TEST(DistanceModel, EffectiveGatesExactSmallCase)
{
    // f=2, k=3: 2 + 4 + 8 = 14.
    EXPECT_NEAR(logEffectiveGates(2.0, 3), std::log(14.0), 1e-12);
}

TEST(DistanceModel, EffectiveGatesLargeKClosedForm)
{
    // Large k uses the closed form ~ k ln f + ln(f/(f-1)).
    const double lg = logEffectiveGates(2.0, 1000);
    EXPECT_NEAR(lg, 1000 * std::log(2.0) + std::log(2.0), 1e-6);
}

TEST(DistanceModel, AboveThresholdImpossible)
{
    const auto profile = DecoderProfile::mwpm();
    DistanceQuery query;
    query.physicalErrorRate = 0.2; // above every threshold
    EXPECT_FALSE(requiredDistance(profile, query).has_value());
}

TEST(DistanceModel, MonotoneInPhysicalRate)
{
    const auto profile = DecoderProfile::sfqDecoder();
    int prev = 3;
    for (double p : {1e-5, 1e-4, 1e-3, 1e-2}) {
        DistanceQuery query;
        query.physicalErrorRate = p;
        const auto d = requiredDistance(profile, query);
        ASSERT_TRUE(d.has_value()) << p;
        EXPECT_GE(*d, prev);
        prev = *d;
    }
}

TEST(DistanceModel, BacklogInflatesRequiredDistance)
{
    // The core Fig. 11 claim: at the same physical rate, the offline
    // MWPM (f > 1) needs a much larger distance than the online SFQ
    // decoder, and than the hypothetical no-backlog MWPM.
    DistanceQuery query;
    query.physicalErrorRate = 1e-3;
    const auto d_sfq =
        requiredDistance(DecoderProfile::sfqDecoder(), query);
    const auto d_mwpm = requiredDistance(DecoderProfile::mwpm(), query);
    const auto d_ideal =
        requiredDistance(DecoderProfile::mwpmNoBacklog(), query);
    ASSERT_TRUE(d_sfq && d_mwpm && d_ideal);
    EXPECT_GT(*d_mwpm, *d_sfq);
    EXPECT_GE(*d_mwpm, 5 * *d_ideal);
    EXPECT_LE(*d_ideal, *d_sfq);
}

TEST(DistanceModel, UnionFindAlsoBacklogged)
{
    DistanceQuery query;
    query.physicalErrorRate = 1e-3;
    const auto d_uf =
        requiredDistance(DecoderProfile::unionFind(), query);
    const auto d_ideal =
        requiredDistance(DecoderProfile::mwpmNoBacklog(), query);
    ASSERT_TRUE(d_uf && d_ideal);
    EXPECT_GT(*d_uf, *d_ideal);
}

TEST(DistanceModel, MoreTGatesNeedMoreDistance)
{
    const auto profile = DecoderProfile::mwpm();
    DistanceQuery q1, q2;
    q1.physicalErrorRate = q2.physicalErrorRate = 1e-3;
    q1.tGates = 10;
    q2.tGates = 1000;
    const auto d1 = requiredDistance(profile, q1);
    const auto d2 = requiredDistance(profile, q2);
    ASSERT_TRUE(d1 && d2);
    EXPECT_GT(*d2, *d1);
}

TEST(DistanceModel, ReturnedDistancesAreOdd)
{
    DistanceQuery query;
    query.physicalErrorRate = 1e-3;
    for (const auto &profile :
         {DecoderProfile::sfqDecoder(), DecoderProfile::mwpm(),
          DecoderProfile::neuralNet(), DecoderProfile::unionFind(),
          DecoderProfile::mwpmNoBacklog()}) {
        const auto d = requiredDistance(profile, query);
        ASSERT_TRUE(d.has_value()) << profile.name;
        EXPECT_EQ(*d % 2, 1) << profile.name;
    }
}

} // namespace
} // namespace nisqpp
