/** @file Tests reproducing the paper's SQV arithmetic (Fig. 1). */

#include <gtest/gtest.h>

#include "backlog/sqv.hh"

namespace nisqpp {
namespace {

TEST(Sqv, ScalingModelEvaluates)
{
    ScalingModel model{0.03, 0.05, 1.0};
    EXPECT_NEAR(model.logicalErrorRate(3, 0.05), 0.03, 1e-12);
    EXPECT_LT(model.logicalErrorRate(5, 0.01),
              model.logicalErrorRate(3, 0.01));
}

TEST(Sqv, TileFootprints)
{
    EXPECT_EQ(SqvMachine::tileQubits(3), 13);
    EXPECT_EQ(SqvMachine::tileQubits(5), 41);
    EXPECT_EQ(SqvMachine::tileQubits(9), 145);
}

TEST(Sqv, PaperDesignPointD3)
{
    // Paper: 1024 physical qubits at p = 1e-5, d = 3 -> 78 logical
    // qubits, PL = 2.94e-9, SQV = 3.4e8, boost 3402.
    SqvMachine machine;
    ScalingModel model; // overridden below
    const SqvPoint point = sqvPoint(machine, model, 3, 2.94e-9);
    EXPECT_EQ(point.logicalQubits, 78);
    EXPECT_NEAR(point.sqv, 3.4e8, 0.01e8);
    EXPECT_NEAR(point.boost, 3402, 60);
}

TEST(Sqv, PaperDesignPointD5)
{
    SqvMachine machine;
    ScalingModel model;
    const SqvPoint point = sqvPoint(machine, model, 5, 8.96e-10);
    EXPECT_NEAR(point.sqv, 1.12e9, 0.01e9);
    EXPECT_NEAR(point.boost, 11163, 120);
}

TEST(Sqv, ModelDrivenPointIsConsistent)
{
    SqvMachine machine;
    ScalingModel model{0.03, 0.05, 0.65};
    const SqvPoint point = sqvPoint(machine, model, 3);
    EXPECT_GT(point.boost, 100.0);
    EXPECT_DOUBLE_EQ(point.sqv, 1.0 / point.logicalErrorRate);
    EXPECT_DOUBLE_EQ(point.gatesPerQubit * point.logicalQubits,
                     point.sqv);
}

TEST(Sqv, HigherDistanceLowersLogicalRate)
{
    SqvMachine machine;
    ScalingModel model{0.03, 0.05, 0.5};
    const SqvPoint d3 = sqvPoint(machine, model, 3);
    const SqvPoint d5 = sqvPoint(machine, model, 5);
    EXPECT_LT(d5.logicalErrorRate, d3.logicalErrorRate);
    EXPECT_LT(d5.logicalQubits, d3.logicalQubits);
}

} // namespace
} // namespace nisqpp
