/** @file Tests for the backlog execution-time model (Section III). */

#include <gtest/gtest.h>

#include <cmath>

#include "backlog/backlog_sim.hh"
#include "circuits/benchmarks.hh"

namespace nisqpp {
namespace {

/** A k-T-gate straight-line circuit for controlled experiments. */
QCircuit
tChain(int k)
{
    QCircuit qc(1, "t_chain");
    for (int i = 0; i < k; ++i)
        qc.t(0);
    return qc;
}

TEST(Backlog, FastDecoderNoOverhead)
{
    BacklogParams params;
    params.decodeCycleNs = 200.0; // f = 0.5
    const BacklogResult res = simulateBacklog(tChain(50), params);
    EXPECT_DOUBLE_EQ(res.idleNs, 0.0);
    EXPECT_DOUBLE_EQ(res.wallNs, res.computeNs);
    EXPECT_DOUBLE_EQ(res.overhead(), 1.0);
}

TEST(Backlog, MatchedRateNoOverhead)
{
    BacklogParams params; // f = 1 exactly
    const BacklogResult res = simulateBacklog(tChain(50), params);
    EXPECT_NEAR(res.overhead(), 1.0, 1e-12);
}

TEST(Backlog, SlowDecoderGrowsExponentially)
{
    // With f > 1, the stall before the k-th T gate follows f^k: check
    // the measured stalls against the recurrence.
    BacklogParams params;
    params.decodeCycleNs = 800.0; // f = 2
    const BacklogResult res = simulateBacklog(tChain(12), params);
    ASSERT_EQ(res.tGates.size(), 12u);
    // The ratio converges to f once the geometric term dominates the
    // per-gate generation; skip the early transient.
    for (std::size_t i = 5; i < res.tGates.size(); ++i) {
        const double ratio =
            res.tGates[i].stallNs / res.tGates[i - 1].stallNs;
        EXPECT_NEAR(ratio, 2.0, 0.25) << "gate " << i;
    }
    EXPECT_GT(res.overhead(), 50.0);
}

TEST(Backlog, AnalyticRecurrence)
{
    EXPECT_DOUBLE_EQ(analyticBacklogRounds(2.0, 10, 1.0), 1024.0);
    EXPECT_DOUBLE_EQ(analyticBacklogRounds(1.0, 100, 3.0), 3.0);
    EXPECT_NEAR(analyticBacklogRounds(1.5, 4, 2.0),
                2.0 * std::pow(1.5, 4), 1e-12);
}

TEST(Backlog, MeasuredBacklogTracksAnalytic)
{
    BacklogParams params;
    params.decodeCycleNs = 600.0; // f = 1.5
    const BacklogResult res = simulateBacklog(tChain(16), params);
    const double b6 = res.tGates[6].backlogRounds;
    for (std::size_t i = 7; i < res.tGates.size(); ++i) {
        const double expected = analyticBacklogRounds(
            1.5, static_cast<int>(i - 6), b6);
        EXPECT_NEAR(res.tGates[i].backlogRounds / expected, 1.0, 0.35)
            << "gate " << i;
    }
}

TEST(Backlog, MonotoneInRatio)
{
    const QCircuit qc = tChain(30);
    double prev = 0;
    for (double f : {0.5, 1.0, 1.2, 1.5, 2.0}) {
        BacklogParams params;
        params.decodeCycleNs = f * params.syndromeCycleNs;
        const double wall = simulateBacklog(qc, params).wallNs;
        EXPECT_GE(wall, prev);
        prev = wall;
    }
}

TEST(Backlog, SaturatesInsteadOfOverflowing)
{
    BacklogParams params;
    params.decodeCycleNs = 1200.0; // f = 3
    const BacklogResult res =
        simulateBacklog(cuccaroAdder(20), params); // 280 T gates
    EXPECT_TRUE(std::isfinite(res.wallNs));
}

TEST(Backlog, RunningTimeSweepShapes)
{
    const QCircuit qc = takahashiAdder(20);
    const auto series =
        runningTimeVsRatio(qc, 400.0, {0.5, 0.9, 1.0, 1.5, 2.0});
    ASSERT_EQ(series.size(), 5u);
    // Flat below 1, explosive above.
    EXPECT_NEAR(series[0].second, series[1].second, 1e-6);
    EXPECT_GT(series[4].second, series[2].second * 1e10);
}

TEST(Backlog, SteadyStateGrowthClosedForm)
{
    // Fast or matched decoders accumulate nothing.
    EXPECT_DOUBLE_EQ(backlogGrowthPerRound(0.1), 0.0);
    EXPECT_DOUBLE_EQ(backlogGrowthPerRound(1.0), 0.0);
    // Above saturation the producer wins by 1 - 1/f rounds per round.
    EXPECT_DOUBLE_EQ(backlogGrowthPerRound(2.0), 0.5);
    EXPECT_DOUBLE_EQ(backlogGrowthPerRound(1.5), 1.0 - 1.0 / 1.5);
    // Monotone in f and bounded by 1.
    EXPECT_LT(backlogGrowthPerRound(1.5), backlogGrowthPerRound(3.0));
    EXPECT_LT(backlogGrowthPerRound(1000.0), 1.0);
}

TEST(Backlog, ToffolisAreExpandedToTGates)
{
    QCircuit qc(3, "toff");
    qc.toffoli(0, 1, 2);
    BacklogParams params;
    params.decodeCycleNs = 800.0;
    const BacklogResult res = simulateBacklog(qc, params);
    EXPECT_EQ(res.tGates.size(), 7u);
}

} // namespace
} // namespace nisqpp
