/**
 * @file Tests reproducing paper Table I: benchmark qubit counts and
 * T counts match the paper exactly; total gates match under the
 * paper's 17-gate Toffoli budget (see EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include "circuits/benchmarks.hh"
#include "circuits/decompose.hh"

namespace nisqpp {
namespace {

struct TableOneRow
{
    const char *name;
    int qubits;
    std::size_t totalGatesPaper;
    std::size_t tGates;
};

/** The paper's Table I. */
constexpr TableOneRow kTableOne[] = {
    {"takahashi_adder", 40, 740, 266},
    {"barenco_half_dirty_toffoli", 39, 1224, 504},
    {"cnu_half_borrowed", 37, 1156, 476},
    {"cnx_log_depth", 39, 629, 259},
    {"cuccaro_adder", 42, 821, 280},
};

TEST(Benchmarks, TableOneQubitAndTCounts)
{
    const auto suite = tableOneBenchmarks();
    ASSERT_EQ(suite.size(), 5u);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(suite[i].name(), kTableOne[i].name);
        EXPECT_EQ(suite[i].numQubits(), kTableOne[i].qubits)
            << suite[i].name();
        EXPECT_EQ(decomposedTCount(suite[i]), kTableOne[i].tGates)
            << suite[i].name();
    }
}

TEST(Benchmarks, TableOneTotalGatesUnderPaperBudget)
{
    const auto suite = tableOneBenchmarks();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(
            decomposedGateCount(suite[i], kToffoliGatesPaper),
            kTableOne[i].totalGatesPaper)
            << suite[i].name();
    }
}

TEST(Benchmarks, CuccaroStructure)
{
    const QCircuit qc = cuccaroAdder(20);
    EXPECT_EQ(qc.numQubits(), 42);
    EXPECT_EQ(qc.countKind(GateKind::Toffoli), 40u);
    // MAJ: 2 CNOT each; UMA: 3 CNOT + 2 X each; plus the carry CNOT.
    EXPECT_EQ(qc.countKind(GateKind::Cnot), 5u * 20 + 1);
    EXPECT_EQ(qc.countKind(GateKind::X), 2u * 20);
}

TEST(Benchmarks, TakahashiStructure)
{
    const QCircuit qc = takahashiAdder(20);
    EXPECT_EQ(qc.numQubits(), 40);
    EXPECT_EQ(qc.countKind(GateKind::Toffoli), 2u * 19);
    EXPECT_EQ(qc.countKind(GateKind::Cnot), 5u * 20 - 6);
}

TEST(Benchmarks, VChainToffoliCount)
{
    for (int k : {4, 8, 12, 20}) {
        const QCircuit qc = barencoHalfDirtyToffoli(k);
        EXPECT_EQ(qc.numQubits(), 2 * k - 1);
        EXPECT_EQ(qc.countKind(GateKind::Toffoli),
                  static_cast<std::size_t>(4 * (k - 2)));
    }
}

TEST(Benchmarks, CnxLogDepthIsLogarithmic)
{
    const QCircuit qc = cnxLogDepth(19);
    EXPECT_EQ(qc.numQubits(), 39);
    EXPECT_EQ(qc.countKind(GateKind::Toffoli), 37u);
    // Depth grows logarithmically in k (compute + apply + uncompute):
    // ~2 ceil(log2 19) + 1 = 11 Toffoli layers.
    EXPECT_LE(qc.depth(), 2 * 5 + 1);
}

TEST(Benchmarks, CnxSmallCases)
{
    const QCircuit qc2 = cnxLogDepth(2);
    EXPECT_EQ(qc2.countKind(GateKind::Toffoli), 3u); // 1+1+1
    const QCircuit qc4 = cnxLogDepth(4);
    EXPECT_EQ(qc4.countKind(GateKind::Toffoli), 7u); // 3+1+3
}

TEST(Benchmarks, AdderDepthLinear)
{
    const QCircuit a10 = cuccaroAdder(10);
    const QCircuit a20 = cuccaroAdder(20);
    EXPECT_GT(a20.depth(), a10.depth());
    EXPECT_LT(a20.depth(), 3 * a10.depth());
}

} // namespace
} // namespace nisqpp
