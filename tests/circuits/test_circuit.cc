/** @file Tests for the quantum circuit IR. */

#include <gtest/gtest.h>

#include "circuits/circuit.hh"

namespace nisqpp {
namespace {

TEST(Circuit, GateEmission)
{
    QCircuit qc(3, "t");
    qc.h(0);
    qc.cnot(0, 1);
    qc.toffoli(0, 1, 2);
    qc.t(2);
    EXPECT_EQ(qc.size(), 4u);
    EXPECT_EQ(qc.countKind(GateKind::H), 1u);
    EXPECT_EQ(qc.countKind(GateKind::Cnot), 1u);
    EXPECT_EQ(qc.countKind(GateKind::Toffoli), 1u);
    EXPECT_EQ(qc.tCount(), 1u);
}

TEST(Circuit, TdgCountsAsT)
{
    QCircuit qc(1, "t");
    qc.t(0);
    qc.tdg(0);
    EXPECT_EQ(qc.tCount(), 2u);
}

TEST(Circuit, DepthTracksOperandConflicts)
{
    QCircuit qc(3, "t");
    qc.h(0);
    qc.h(1); // parallel with previous
    EXPECT_EQ(qc.depth(), 1);
    qc.cnot(0, 1); // serializes after both
    EXPECT_EQ(qc.depth(), 2);
    qc.h(2); // parallel track
    EXPECT_EQ(qc.depth(), 2);
}

TEST(Circuit, OperandValidation)
{
    QCircuit qc(2, "t");
    EXPECT_DEATH(qc.h(5), "out of range");
    EXPECT_DEATH(qc.cnot(1, 1), "repeated operand");
}

TEST(Circuit, GateMetadata)
{
    EXPECT_TRUE(isTGate(GateKind::T));
    EXPECT_TRUE(isTGate(GateKind::Tdg));
    EXPECT_FALSE(isTGate(GateKind::S));
    EXPECT_EQ(gateArity(GateKind::Toffoli), 3);
    EXPECT_EQ(gateArity(GateKind::Cnot), 2);
    EXPECT_EQ(gateArity(GateKind::H), 1);
    EXPECT_EQ(gateName(GateKind::Toffoli), "ccx");
}

TEST(Circuit, Append)
{
    QCircuit a(2, "a"), b(2, "b");
    a.h(0);
    b.cnot(0, 1);
    a.append(b);
    EXPECT_EQ(a.size(), 2u);
}

} // namespace
} // namespace nisqpp
