/** @file Tests for Clifford+T decomposition. */

#include <gtest/gtest.h>

#include "circuits/decompose.hh"

namespace nisqpp {
namespace {

TEST(Decompose, ToffoliExpansion)
{
    QCircuit qc(3, "t");
    qc.toffoli(0, 1, 2);
    const QCircuit out = decomposeToffoli(qc);
    EXPECT_EQ(out.countKind(GateKind::Toffoli), 0u);
    EXPECT_EQ(out.size(), static_cast<std::size_t>(kToffoliGates));
    EXPECT_EQ(out.tCount(), static_cast<std::size_t>(kToffoliTCount));
    EXPECT_EQ(out.countKind(GateKind::H), 2u);
    EXPECT_EQ(out.countKind(GateKind::Cnot), 6u);
}

TEST(Decompose, NonToffoliGatesPreserved)
{
    QCircuit qc(3, "t");
    qc.h(0);
    qc.s(1);
    qc.cnot(0, 2);
    qc.toffoli(0, 1, 2);
    qc.x(1);
    const QCircuit out = decomposeToffoli(qc);
    EXPECT_EQ(out.countKind(GateKind::H), 1u + 2u);
    EXPECT_EQ(out.countKind(GateKind::S), 1u);
    EXPECT_EQ(out.countKind(GateKind::X), 1u);
    EXPECT_EQ(out.countKind(GateKind::Cnot), 1u + 6u);
}

TEST(Decompose, CountHelpersMatchMaterialization)
{
    QCircuit qc(4, "t");
    qc.toffoli(0, 1, 2);
    qc.toffoli(1, 2, 3);
    qc.cnot(0, 3);
    const QCircuit out = decomposeToffoli(qc);
    EXPECT_EQ(decomposedTCount(qc), out.tCount());
    EXPECT_EQ(decomposedGateCount(qc), out.size());
}

TEST(Decompose, PaperBudgetAddsTwoPerToffoli)
{
    QCircuit qc(3, "t");
    qc.toffoli(0, 1, 2);
    EXPECT_EQ(decomposedGateCount(qc, kToffoliGatesPaper),
              decomposedGateCount(qc) + 2);
}

} // namespace
} // namespace nisqpp
